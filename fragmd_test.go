package fragmd_test

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd"
)

// End-to-end smoke test of the public API: fragment a water trimer,
// compute the MBE3/RI-MP2 energy and compare with the supersystem
// (an exact identity for three monomers).
func TestPublicAPIEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 supersystem comparison is slow; run without -short")
	}
	sys := fragmd.WaterCluster(3)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eval := fragmd.NewRIMP2Potential("sto-3g", false)
	res, err := frag.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	eSuper, _, err := eval.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-eSuper) > 1e-8 {
		t.Errorf("MBE3 %.10f != supersystem %.10f", res.Energy, eSuper)
	}
}

// Public API AIMD: a few asynchronous steps with the surrogate
// potential must conserve energy.
func TestPublicAPIMD(t *testing.T) {
	sys := fragmd.WaterCluster(4)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := fragmd.RunAIMD(frag, fragmd.NewLennardJonesPotential(), 150, 0.25, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 10 {
		t.Fatalf("got %d steps", len(stats))
	}
	drift := math.Abs(stats[9].Etot - stats[0].Etot)
	if drift > 1e-5 {
		t.Errorf("energy drift %.2e", drift)
	}
}

// Public API cluster simulation: the million-electron workload must
// enumerate and simulate.
func TestPublicAPISimulation(t *testing.T) {
	w := fragmd.UreaWorkload(400, 4, 15.3, 15.3)
	r, err := fragmd.Simulate(w, fragmd.Frontier(), fragmd.SimOptions{Nodes: 16, Steps: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.PFLOPS <= 0 || r.PeakFraction <= 0 || r.PeakFraction > 1 {
		t.Errorf("implausible simulation result: %+v", r)
	}
}

// FLOP accounting is exposed and monotone.
func TestPublicAPIFLOPs(t *testing.T) {
	fragmd.ResetGEMMFLOPs()
	sys := fragmd.Water()
	eval := fragmd.NewRIMP2Potential("sto-3g", false)
	if _, _, err := eval.Evaluate(sys); err != nil {
		t.Fatal(err)
	}
	if fragmd.GEMMFLOPs() <= 0 {
		t.Error("GEMM FLOP counter did not advance during an RI-MP2 evaluation")
	}
}
