package fragmd_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd"
)

// End-to-end smoke test of the public API: fragment a water trimer,
// compute the MBE3/RI-MP2 energy and compare with the supersystem
// (an exact identity for three monomers).
func TestPublicAPIEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 supersystem comparison is slow; run without -short")
	}
	sys := fragmd.WaterCluster(3)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eval := fragmd.NewRIMP2Potential("sto-3g", false)
	res, err := frag.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	eSuper, _, err := eval.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-eSuper) > 1e-8 {
		t.Errorf("MBE3 %.10f != supersystem %.10f", res.Energy, eSuper)
	}
}

// Public API AIMD: a few asynchronous steps with the surrogate
// potential must conserve energy.
func TestPublicAPIMD(t *testing.T) {
	sys := fragmd.WaterCluster(4)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := fragmd.RunAIMD(frag, fragmd.NewLennardJonesPotential(), 150, 0.25, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 10 {
		t.Fatalf("got %d steps", len(stats))
	}
	drift := math.Abs(stats[9].Etot - stats[0].Etot)
	if drift > 1e-5 {
		t.Errorf("energy drift %.2e", drift)
	}
}

// Public API cluster simulation: the million-electron workload must
// enumerate and simulate.
func TestPublicAPISimulation(t *testing.T) {
	w := fragmd.UreaWorkload(400, 4, 15.3, 15.3)
	r, err := fragmd.Simulate(w, fragmd.Frontier(), fragmd.SimOptions{Nodes: 16, Steps: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.PFLOPS <= 0 || r.PeakFraction <= 0 || r.PeakFraction > 1 {
		t.Errorf("implausible simulation result: %+v", r)
	}
}

// FLOP accounting is exposed and monotone.
func TestPublicAPIFLOPs(t *testing.T) {
	fragmd.ResetGEMMFLOPs()
	sys := fragmd.Water()
	eval := fragmd.NewRIMP2Potential("sto-3g", false)
	if _, _, err := eval.Evaluate(sys); err != nil {
		t.Fatal(err)
	}
	if fragmd.GEMMFLOPs() <= 0 {
		t.Error("GEMM FLOP counter did not advance during an RI-MP2 evaluation")
	}
}

// Public API distributed backend: the same LJ trajectory run in
// process and over a localhost worker fleet must agree step for step
// (DESIGN.md §10).
func TestPublicAPIDistributed(t *testing.T) {
	sys := fragmd.WaterCluster(4)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, local, err := fragmd.RunAIMD(frag, fragmd.NewLennardJonesPotential(), 150, 0.25, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	c, err := fragmd.ListenCoordinator("127.0.0.1:0", fragmd.CoordinatorOptions{
		Eval: fragmd.EvalSpec{Potential: "lj"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go fragmd.RunWorkerProcess(ctx, c.Addr(), fragmd.WorkerOptions{Slots: 2})
	}
	if _, err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	x := c.Executor()
	eng, err := fragmd.NewEngine(frag, nil, fragmd.EngineOptions{
		Async: true, Dt: 0.25 * fragmd.AtomicTimePerFs, Exec: x, Groups: x.Procs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fragmd.NewMDState(frag.Geom.Clone())
	st.SampleVelocities(150, rand.New(rand.NewSource(1)))
	remote, err := eng.Run(st, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote run reported %d steps, local %d", len(remote), len(local))
	}
	for i := range local {
		if d := math.Abs(remote[i].Etot - local[i].Etot); d > 1e-10 {
			t.Errorf("step %d: |ΔEtot| = %.3e Ha between network and in-process engines", i, d)
		}
	}
}
