package fragmd_test

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"github.com/fragmd/fragmd"
	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/mp2"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/scf"
	"github.com/fragmd/fragmd/internal/sched"
)

// -update regenerates the golden files instead of comparing:
//
//	go test -run Golden -update .
var update = flag.Bool("update", false, "rewrite golden trajectory files")

// Golden-trajectory regression tests: the quickstart and urea_crystal
// example workloads are run at reduced size and their energies
// compared bit-for-bit against committed JSON. Values are stored as
// shortest round-trip decimal strings (strconv 'g' −1), so string
// equality is float64 bit equality. Any refactor that changes an
// energy in the 16th digit shows up here; legitimate numerical changes
// are adopted explicitly with -update.
//
// Determinism requirements: one worker (a single completion order for
// the gradient accumulation), auto-tuner off (its timing-based variant
// arbitration is the one nondeterministic kernel ingredient), fixed
// seeds. Pure-Go float64 arithmetic is IEEE-deterministic on a given
// architecture; the committed files are amd64 (no fused-multiply-add
// contraction in these kernels).

// fnum is a bit-exact float64 in JSON.
type fnum string

func num(v float64) fnum { return fnum(strconv.FormatFloat(v, 'g', -1, 64)) }

type goldenStep struct {
	Etot fnum `json:"etot"`
	Epot fnum `json:"epot"`
}

type goldenContribution struct {
	Key    string `json:"key"`
	DeltaE fnum   `json:"delta_e_ha"`
}

type goldenQuickstart struct {
	System      string               `json:"system"`
	NPolymers   int                  `json:"n_polymers"`
	MBEEnergy   fnum                 `json:"mbe_energy_ha"`
	Supersystem fnum                 `json:"supersystem_energy_ha"`
	Dimers      []goldenContribution `json:"dimer_deltas"`
	Trajectory  []goldenStep         `json:"trajectory"`
}

type goldenUrea struct {
	System   string `json:"system"`
	Energy   fnum   `json:"rimp2_energy_ha"`
	Gradient []fnum `json:"gradient_ha_bohr"`
}

// withDeterministicKernels pins the GEMM engine for the duration of a
// golden run: auto-tuner off (timing-based variant arbitration) and
// the assembly microkernel off — its FMA contraction changes f64
// rounding relative to the portable kernel the goldens were recorded
// with. The asm path is covered separately by the tolerance test
// below.
func withDeterministicKernels(t *testing.T, fn func()) {
	t.Helper()
	was := autotune.Default.Enabled
	autotune.Default.Enabled = false
	wasAsm := linalg.SetAsmEnabled(false)
	defer func() {
		autotune.Default.Enabled = was
		linalg.SetAsmEnabled(wasAsm)
	}()
	fn()
}

// compareGolden marshals got, then either rewrites the golden file
// (-update) or diffs byte-for-byte against it.
func compareGolden(t *testing.T, name string, got interface{}) {
	t.Helper()
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(want) != string(blob) {
		t.Errorf("energies diverged from %s — a refactor changed the numbers.\n"+
			"If intentional, regenerate with: go test -run Golden -update .\ngot:\n%swant:\n%s",
			path, blob, want)
	}
}

// The quickstart example's workload: MBE3/RI-MP2 on a 3-water cluster
// (exact vs the supersystem), the dimer ΔEs, and 3 steps of
// asynchronous NVE AIMD.
func TestGoldenQuickstartTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 trajectory is slow; run without -short")
	}
	withDeterministicKernels(t, func() {
		sys := fragmd.WaterCluster(3)
		frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eval := fragmd.NewRIMP2Potential("sto-3g", false)
		res, err := frag.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		eSuper, _, err := eval.Evaluate(sys)
		if err != nil {
			t.Fatal(err)
		}
		g := goldenQuickstart{
			System:      "water cluster n=3, MBE3/RI-MP2/STO-3G",
			NPolymers:   res.NPolymers,
			MBEEnergy:   num(res.Energy),
			Supersystem: num(eSuper),
		}
		keys := make([]string, 0, len(res.DeltaDimer))
		for k := range res.DeltaDimer {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g.Dimers = append(g.Dimers, goldenContribution{Key: k, DeltaE: num(res.DeltaDimer[k])})
		}

		eng, err := sched.New(frag, eval, sched.Options{
			Workers: 1, Async: true, Dt: 0.5 * chem.AtomicTimePerFs,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(frag.Geom.Clone())
		state.SampleVelocities(150, rand.New(rand.NewSource(1)))
		stats, err := eng.Run(state, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			g.Trajectory = append(g.Trajectory, goldenStep{Etot: num(st.Etot), Epot: num(st.Epot)})
		}
		compareGolden(t, "golden_quickstart.json", g)
	})
}

type goldenWaterBox struct {
	System     string       `json:"system"`
	CellBohr   []fnum       `json:"cell_bohr"`
	NMonomers  int          `json:"n_monomers"`
	NDimers    int          `json:"n_dimers"`
	MBE2Energy fnum         `json:"mbe2_lj_energy_ha"`
	Trajectory []goldenStep `json:"trajectory"`
}

// The water_box example's workload: periodic MBE2/LJ on a 3×3×3 water
// lattice with minimum-image boundaries and a dimer cutoff under half
// the box edge, plus 10 steps of NVE MD, locked bit-for-bit. This is
// the regression anchor for the whole PBC path — cell parsing, min-
// image dimer selection through the cell list, image-shifted fragment
// extraction, and periodic LJ forces all feed these numbers. (LJ is
// cheap, so this golden also runs under -short.)
func TestGoldenWaterBoxTrajectory(t *testing.T) {
	withDeterministicKernels(t, func() {
		sys := fragmd.WaterBox(3, 3, 3, 1)
		frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{
			MaxOrder:    2,
			DimerCutoff: 4.0 * chem.BohrPerAngstrom, // < L/2 = 4.66 Å
		})
		if err != nil {
			t.Fatal(err)
		}
		eval := fragmd.NewLennardJonesPotential()
		res, err := frag.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		terms := frag.Terms()
		g := goldenWaterBox{
			System:     "water box 3x3x3, periodic MBE2/LJ, dimer cut 4 Å",
			NMonomers:  len(terms.Monomers),
			NDimers:    len(terms.Dimers),
			MBE2Energy: num(res.Energy),
		}
		for _, l := range sys.Cell.L {
			g.CellBohr = append(g.CellBohr, num(l))
		}

		eng, err := sched.New(frag, eval, sched.Options{
			Workers: 1, Async: true, Dt: 0.5 * chem.AtomicTimePerFs,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(frag.Geom.Clone())
		state.SampleVelocities(150, rand.New(rand.NewSource(1)))
		stats, err := eng.Run(state, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			g.Trajectory = append(g.Trajectory, goldenStep{Etot: num(st.Etot), Epot: num(st.Epot)})
		}
		compareGolden(t, "golden_water_box.json", g)
	})
}

type goldenEmbedded struct {
	System       string       `json:"system"`
	NPolymers    int          `json:"n_polymers"`
	VacuumMBE2   fnum         `json:"vacuum_mbe2_ha"`
	EmbeddedMBE2 fnum         `json:"embedded_mbe2_ha"`
	Supersystem  fnum         `json:"supersystem_energy_ha"`
	SCCRounds    int          `json:"scc_rounds"`
	Charges      []fnum       `json:"embedding_charges_e"`
	Trajectory   []goldenStep `json:"trajectory"`
}

// The water_embedded example's workload: EE-MBE2/RI-HF on a 4-water
// cluster (vacuum vs embedded vs supersystem, the phase-1 charges) and
// 3 steps of embedded NVE AIMD, locked bit-for-bit.
func TestGoldenEmbeddedWaterTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("embedded RI-HF trajectory is slow; run without -short")
	}
	withDeterministicKernels(t, func() {
		sys := fragmd.WaterCluster(4)
		frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{MaxOrder: 2})
		if err != nil {
			t.Fatal(err)
		}
		eval := fragmd.NewHFPotential("sto-3g", true)
		eo := fragmd.EmbedOptions{SCC: 1, Damping: 0.3}
		super, _, err := eval.Evaluate(sys)
		if err != nil {
			t.Fatal(err)
		}
		vac, err := frag.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		emb, err := frag.ComputeEmbedded(eval, nil, eo)
		if err != nil {
			t.Fatal(err)
		}
		g := goldenEmbedded{
			System:       "water cluster n=4, EE-MBE2/RI-HF/STO-3G",
			NPolymers:    emb.NPolymers,
			VacuumMBE2:   num(vac.Energy),
			EmbeddedMBE2: num(emb.Energy),
			Supersystem:  num(super),
			SCCRounds:    emb.SCCRounds,
		}
		for _, q := range emb.Charges {
			g.Charges = append(g.Charges, num(q))
		}

		eng, err := sched.New(frag, eval, sched.Options{
			Workers: 1, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Embed: &eo,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(frag.Geom.Clone())
		state.SampleVelocities(120, rand.New(rand.NewSource(1)))
		stats, err := eng.Run(state, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			g.Trajectory = append(g.Trajectory, goldenStep{Etot: num(st.Etot), Epot: num(st.Epot)})
		}
		compareGolden(t, "golden_water_embedded.json", g)
	})
}

// The urea_crystal example's workload at regression-test size: the
// r=3 Å sphere is the single central molecule, whose RI-MP2 energy and
// full analytic gradient are locked bit-for-bit. (A urea *dimer*
// evaluation runs ~2 minutes in the pure-Go kernels, so the example's
// ΔE analysis is exercised at golden precision on the water dimers
// above instead.)
func TestGoldenUreaCrystalEnergies(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 on urea is slow; run without -short")
	}
	withDeterministicKernels(t, func() {
		sys := fragmd.UreaCrystalSphere(3.0)
		eval := fragmd.NewRIMP2Potential("sto-3g", false)
		e, grad, err := eval.Evaluate(sys)
		if err != nil {
			t.Fatal(err)
		}
		g := goldenUrea{
			System: "urea crystal sphere r=3.0 Å (1 molecule), RI-MP2/STO-3G",
			Energy: num(e),
		}
		for _, v := range grad {
			g.Gradient = append(g.Gradient, num(v))
		}
		compareGolden(t, "golden_urea_crystal.json", g)
	})
}

// goldenMBEEnergy reads the committed quickstart golden and returns
// its MBE energy as a float64.
func goldenMBEEnergy(t *testing.T) float64 {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", "golden_quickstart.json"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var g goldenQuickstart
	if err := json.Unmarshal(blob, &g); err != nil {
		t.Fatal(err)
	}
	e, err := strconv.ParseFloat(string(g.MBEEnergy), 64)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// quickstartMBE recomputes the quickstart MBE energy with the current
// kernel configuration (tuner off so only the kernel choice varies).
func quickstartMBE(t *testing.T, prec linalg.Precision) float64 {
	t.Helper()
	was := autotune.Default.Enabled
	autotune.Default.Enabled = false
	defer func() { autotune.Default.Enabled = was }()
	sys := fragmd.WaterCluster(3)
	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &potential.RIMP2{
		Basis:   "sto-3g",
		SCFOpts: scf.Options{Precision: prec},
		MP2Opts: mp2.Options{Precision: prec},
	}
	res, err := frag.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy
}

// The assembly microkernel is FMA-contracted, so it cannot match the
// portable goldens bit-for-bit — but the converged MBE energy must
// agree to well below chemical meaning. Pins that enabling asm
// perturbs physics only at the rounding level.
func TestGoldenQuickstartAsmTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 MBE is slow; run without -short")
	}
	if !linalg.AsmAvailable() {
		t.Skip("no assembly microkernel on this machine")
	}
	prev := linalg.SetAsmEnabled(true)
	defer linalg.SetAsmEnabled(prev)
	want := goldenMBEEnergy(t)
	got := quickstartMBE(t, linalg.F64)
	if d := got - want; d > 1e-7 || d < -1e-7 {
		t.Fatalf("asm-kernel MBE energy %.12f vs golden %.12f (|Δ|=%.3g > 1e-7 Ha)", got, want, d)
	}
}

// The mixed-precision packed path stores operands in float32
// (≤2⁻²⁴ per-operand perturbation, f64 accumulation); the converged
// MBE energy must stay within the documented ~1e-7 relative envelope
// of the exact golden (~2e-5 Ha on this ~225 Ha system; measured
// error is ~7e-8 Ha — the B-build staying exact is what keeps the
// metric's condition number out of the error budget).
func TestGoldenQuickstartF32Tolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 MBE is slow; run without -short")
	}
	want := goldenMBEEnergy(t)
	got := quickstartMBE(t, linalg.F32)
	tol := 1e-7 * (-want)
	if d := got - want; d > tol || d < -tol {
		t.Fatalf("f32-path MBE energy %.12f vs golden %.12f (|Δ|=%.3g > %.3g Ha)", got, want, d, tol)
	}
}
