// Package fragmd is a from-scratch Go implementation of biomolecular-
// scale ab initio molecular dynamics with MP2 potentials, reproducing
// "Breaking the Million-Electron and 1 EFLOP/s Barriers" (SC 2024):
// MBE3 molecular fragmentation, synergistic RI-HF + RI-MP2 analytic
// gradients with no four-center integrals, asynchronous time-step AIMD,
// runtime GEMM auto-tuning, and a discrete-event simulator of the
// Frontier/Perlmutter executions.
//
// This file is the public facade: it re-exports the stable surface of
// the internal packages through type aliases and constructors, so
// downstream code imports only github.com/fragmd/fragmd.
//
// Quick start:
//
//	sys := fragmd.WaterCluster(8)
//	frag, _ := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
//	res, _ := frag.Compute(fragmd.NewRIMP2Potential("sto-3g", false))
//	fmt.Println(res.Energy)
//
// # Warm-start / incremental AIMD
//
// Successive AIMD time steps move each fragment only slightly, so the
// engine can reuse per-polymer electronic state across steps
// (EngineOptions, package warmstart). Two knobs with distinct accuracy
// semantics:
//
//   - WarmStart (exact): each polymer's converged density seeds the
//     next SCF of the same polymer. Converged energies and forces are
//     unchanged to within the SCF thresholds — only iteration counts
//     and wall time drop. StepStats.SCFIters measures the effect.
//
//   - SkipTol + MaxSkip (approximate): a polymer whose atoms have all
//     moved less than SkipTol (Bohr) since its last real evaluation
//     reuses its cached energy and gradient outright; displacement is
//     measured against the last evaluated geometry, so drift
//     accumulates toward the tolerance rather than resetting each
//     step, and MaxSkip bounds consecutive reuses (the staleness
//     bound). Errors are O(SkipTol) in the forces — choose SkipTol
//     well below the per-step displacement scale you care about.
//
// See NewWarmStartCache to carry state across engines or into the
// serial ComputeWithCache path.
package fragmd

import (
	"context"
	"math/rand"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/resilience"
	"github.com/fragmd/fragmd/internal/sched"
	"github.com/fragmd/fragmd/internal/serve"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// Geometry is a molecular geometry (positions in Bohr; XYZ I/O in Å).
type Geometry = molecule.Geometry

// Cell is an orthorhombic periodic cell (edge lengths in Bohr). Attach
// one to Geometry.Cell — or build a periodic system with WaterBox,
// SolvatedSolute or UreaSupercell — and every distance in the
// fragmentation path, the LJ potential and the neighbour enumeration
// switches to the minimum-image convention. Atom positions stay
// unwrapped; see the molecule package for the full conventions.
type Cell = molecule.Cell

// NewCell (Bohr) and NewCellAngstrom (Å) build a validated periodic
// cell from three positive edge lengths.
var (
	NewCell         = molecule.NewCell
	NewCellAngstrom = molecule.NewCellAngstrom
)

// Geometry builders for the paper's benchmark systems. WaterBox,
// SolvatedSolute and UreaSupercell build periodic/solvated systems
// with Geometry.Cell attached (see Cell).
var (
	Water             = molecule.Water
	WaterDimer        = molecule.WaterDimer
	WaterCluster      = molecule.WaterCluster
	WaterBox          = molecule.WaterBox
	SolvatedSolute    = molecule.SolvatedSolute
	Urea              = molecule.Urea
	UreaCrystalSphere = molecule.UreaCrystalSphere
	UreaSupercell     = molecule.UreaSupercell
	Paracetamol       = molecule.Paracetamol
	ParacetamolSphere = molecule.ParacetamolSphere
	Polyglycine       = molecule.Polyglycine
	BetaFibril        = molecule.BetaFibril
	ParseXYZ          = molecule.ParseXYZ
)

// Unit conversions.
const (
	BohrPerAngstrom = chem.BohrPerAngstrom
	AngstromPerBohr = chem.AngstromPerBohr
	AtomicTimePerFs = chem.AtomicTimePerFs
	KJPerMolPerHa   = chem.KJPerMolPerHartree
)

// Fragmentation types (MBE3 machinery, paper §V-B).
type (
	// Fragmentation partitions a system into monomers and enumerates
	// dimer/trimer corrections under distance cutoffs.
	Fragmentation = fragment.Fragmentation
	// FragmentOptions sets cutoffs (Bohr), MBE order and H-cap geometry.
	FragmentOptions = fragment.Options
	// Evaluator computes a fragment's energy and gradient.
	Evaluator = fragment.Evaluator
	// StatefulEvaluator additionally reuses converged electronic state
	// across evaluations (warm starting); the built-in potentials all
	// implement it.
	StatefulEvaluator = fragment.StatefulEvaluator
	// MBEResult is an assembled energy/gradient with ΔE bookkeeping.
	MBEResult = fragment.Result
	// WarmStartCache holds per-polymer electronic states across AIMD
	// steps (see the package comment's warm-start section).
	WarmStartCache = warmstart.Cache
	// WarmStartState is one polymer's reusable converged state.
	WarmStartState = warmstart.State
)

// Electrostatic embedding (EE-MBE, DESIGN.md §8): every MBE term is
// evaluated in the point-charge field of the monomers outside it, so
// the truncated expansion captures the long-range polarisation that
// bare-fragment MBE misses at biomolecular scale.
type (
	// PointCharges is an external point-charge field (flat 3M site
	// positions in Bohr, M charges in e).
	PointCharges = integrals.PointCharges
	// EmbedOptions configures the two-phase EE-MBE driver: SCC rounds
	// of self-consistent monomer charges (with damping and an early
	// convergence stop), then embedded evaluation of every polymer.
	// Use it with Fragmentation.ComputeEmbedded (serial) or
	// EngineOptions.Embed (asynchronous AIMD engine, where SCCTol is
	// ignored because the task graph is static).
	EmbedOptions = fragment.EmbedOptions
	// EmbeddedEvaluator evaluates a fragment in a point-charge field,
	// returning also the analytic forces on the field sites; the
	// RI-MP2, HF and Lennard-Jones potentials all implement it.
	EmbeddedEvaluator = fragment.EmbeddedEvaluator
	// ChargeSource derives per-atom partial charges (EE-MBE phase 1).
	ChargeSource = fragment.ChargeSource
)

// NewWarmStartCache creates a warm-start cache for incremental MBE
// evaluation: skipTol is the max-atom-displacement skip tolerance in
// Bohr (0 disables skip reuse), maxSkip the staleness bound on
// consecutive reuses (0 selects the default). Pass it via
// EngineOptions.Cache or Fragmentation.ComputeWithCache.
func NewWarmStartCache(skipTol float64, maxSkip int) *WarmStartCache {
	return warmstart.NewCache(skipTol, maxSkip)
}

// NewFragmentation fragments with an explicit monomer partition
// (atom-index lists); covalent boundaries are hydrogen-capped.
func NewFragmentation(g *Geometry, monomers [][]int, opts FragmentOptions) (*Fragmentation, error) {
	return fragment.New(g, monomers, opts)
}

// FragmentByMolecule fragments a cluster built molecule-by-molecule into
// monomers of molsPerMonomer consecutive molecules.
func FragmentByMolecule(g *Geometry, atomsPerMol, molsPerMonomer int, opts FragmentOptions) (*Fragmentation, error) {
	return fragment.ByMolecule(g, atomsPerMol, molsPerMonomer, opts)
}

// NewRIMP2Potential returns the paper's production potential: RI-HF +
// RI-MP2 energies with fully analytic gradients. basis is "sto-3g" or
// "dzp"; scs applies spin-component scaling to reported energies.
func NewRIMP2Potential(basis string, scs bool) Evaluator {
	return &potential.RIMP2{Basis: basis, SCS: scs}
}

// NewHFPotential returns a Hartree-Fock potential; useRI selects the
// RI Fock build, false the conventional four-center baseline.
func NewHFPotential(basis string, useRI bool) Evaluator {
	return &potential.HF{Basis: basis, UseRI: useRI}
}

// NewLennardJonesPotential returns the fast surrogate potential used to
// exercise MD and scheduling at scales the ab initio evaluators cannot
// reach on a workstation.
func NewLennardJonesPotential() Evaluator { return &potential.LennardJones{} }

// MD types.
type (
	// MDState holds positions, velocities and masses in atomic units.
	MDState = md.State
	// StepStats reports one asynchronous-engine time step.
	StepStats = sched.StepStats
	// EngineOptions configures the asynchronous AIMD engine.
	EngineOptions = sched.Options
	// Engine is the asynchronous time-step AIMD driver (paper §V-F).
	Engine = sched.Engine
)

// NewMDState builds a state with standard masses and zero velocities.
func NewMDState(g *Geometry) *MDState { return md.NewState(g) }

// Berendsen is the weak-coupling thermostat for NVT equilibration before
// NVE production runs.
type Berendsen = md.Berendsen

// TrajectoryWriter streams MD frames as multi-frame XYZ.
type TrajectoryWriter = md.TrajectoryWriter

// NewEngine creates the asynchronous (or, with Async=false, barrier-
// synchronised) AIMD engine over a fragmentation and potential. The
// EngineOptions Groups/Batch/Steal knobs engage the hierarchical
// group-coordinator scheduler shared with the cluster simulator
// (DESIGN.md §6); Workers defaults to runtime.GOMAXPROCS(0).
func NewEngine(f *Fragmentation, eval Evaluator, opts EngineOptions) (*Engine, error) {
	return sched.New(f, eval, opts)
}

// RunAIMD is a convenience wrapper: fragment the system, sample
// Maxwell–Boltzmann velocities, and run n asynchronous MBE3 AIMD steps.
// dtFs is the time step in femtoseconds.
func RunAIMD(f *Fragmentation, eval Evaluator, tempK, dtFs float64, n int, seed int64, obs func(StepStats)) (*MDState, []StepStats, error) {
	eng, err := sched.New(f, eval, sched.Options{Async: true, Dt: dtFs * chem.AtomicTimePerFs})
	if err != nil {
		return nil, nil, err
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(tempK, rand.New(rand.NewSource(seed)))
	stats, err := eng.Run(state, n, obs)
	return state, stats, err
}

// Resilience types (checkpoint/restart and failure injection; see
// DESIGN.md §7). A trajectory checkpoint is a schema-versioned,
// atomically-written, checksummed snapshot of the MD state plus the
// warm-start cache; a FailureInjector drives seeded deterministic
// chaos (task failures, worker deaths, stragglers) through
// EngineOptions.Injector or SimOptions.Injector.
type (
	// Checkpoint is a trajectory snapshot with Save/Load round-trip
	// integrity (CRC-checked) and State()/RestoreCache() rebuilders.
	Checkpoint = resilience.Checkpoint
	// FailureInjector makes seeded, order-independent failure
	// decisions for chaos testing in both scheduler backends.
	FailureInjector = resilience.FailureInjector
	// InjectOptions configures a FailureInjector.
	InjectOptions = resilience.InjectOptions
)

// SnapshotTrajectory captures a checkpoint from an MD state after
// stepsDone completed force evaluations with time step dt (atomic
// units); attach the engine's warm-start cache with
// Checkpoint.AttachCache before saving to keep the incremental-SCF
// advantage across the restart.
func SnapshotTrajectory(state *MDState, stepsDone int, dt float64) *Checkpoint {
	return resilience.Snapshot(state, stepsDone, dt)
}

// SaveCheckpoint atomically writes a checkpoint (temp file + rename,
// CRC over the payload); LoadCheckpoint verifies magic, schema and
// checksum before trusting any field.
func SaveCheckpoint(path string, ck *Checkpoint) error { return resilience.Save(path, ck) }

// LoadCheckpoint reads and verifies a checkpoint written by
// SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) { return resilience.Load(path) }

// NewFailureInjector builds a seeded deterministic failure injector.
func NewFailureInjector(o InjectOptions) (*FailureInjector, error) {
	return resilience.NewFailureInjector(o)
}

// Cluster-simulation types (the Frontier/Perlmutter substitute).
type (
	// Machine models an HPC system for the discrete-event simulator.
	Machine = cluster.Machine
	// Workload is a fragment workload with dependency metadata.
	Workload = cluster.Workload
	// SimOptions configures a simulated run.
	SimOptions = cluster.Options
	// SimResult reports simulated latency, PFLOP/s and peak fraction.
	SimResult = cluster.Result
)

// Machine models and workload builders.
var (
	Frontier            = cluster.Frontier
	Perlmutter          = cluster.Perlmutter
	UreaWorkload        = cluster.UreaWorkload
	ParacetamolWorkload = cluster.ParacetamolWorkload
	FibrilWorkload      = cluster.FibrilWorkload
)

// Simulate runs the discrete-event execution model.
func Simulate(w *Workload, m Machine, opts SimOptions) (*SimResult, error) {
	return cluster.Simulate(w, m, opts)
}

// Distributed-backend types (gob-over-TCP worker fleet, DESIGN.md
// §10): a Coordinator accepts WorkerProcess connections and hands the
// engine a remote executor via EngineOptions.Exec, so an MD trajectory
// runs across OS processes with the same scheduling policy — and the
// same failure semantics — as the in-process pool.
type (
	// Coordinator listens for worker processes and snapshots the live
	// fleet into per-run executors (Coordinator.Executor).
	Coordinator = netcoord.Coordinator
	// CoordinatorOptions configures listening, the evaluator spec the
	// workers must build, and heartbeat/eviction timing.
	CoordinatorOptions = netcoord.CoordinatorOptions
	// WorkerOptions configures one worker process: slot count,
	// warm-start cache, and the redial policy.
	WorkerOptions = netcoord.WorkerOptions
	// EvalSpec names an evaluator configuration portably, so the
	// coordinator can ship it to workers in the handshake.
	EvalSpec = netcoord.EvalSpec
)

// ListenCoordinator starts accepting worker connections; pass
// Coordinator.Executor() output via EngineOptions.Exec to run an
// engine over the fleet.
func ListenCoordinator(addr string, opts CoordinatorOptions) (*Coordinator, error) {
	return netcoord.Listen(addr, opts)
}

// RunWorkerProcess serves evaluation tasks to the coordinator at addr
// until ctx is cancelled, redialling through coordinator restarts (see
// WorkerOptions.Redial). It is the library form of "fragmd worker".
func RunWorkerProcess(ctx context.Context, addr string, opts WorkerOptions) error {
	return netcoord.RunWorker(ctx, addr, opts)
}

// Trajectory-server types (fragmd-as-a-service, DESIGN.md §12): a
// TrajectoryServer runs MD trajectories for many tenants behind an
// HTTP/JSON API with admission control, tenant-fair scheduling, shared
// warm-start caches, and durable per-job checkpoints — Drain parks
// every in-flight job at its next checkpoint and a successor server on
// the same state directory resumes all of them. It is the library form
// of "fragmd serve".
type (
	// TrajectoryServer owns the job queue, the runners, and the durable
	// state directory; serve its Handler() over net/http.
	TrajectoryServer = serve.Server
	// ServeOptions configures capacity, checkpoint cadence, and the
	// optional worker fleet behind the server.
	ServeOptions = serve.Options
	// ServeJobSpec is a client's trajectory request (the POST /v1/jobs
	// body).
	ServeJobSpec = serve.JobSpec
	// ServeJobView is the API projection of a job's progress.
	ServeJobView = serve.JobView
)

// NewTrajectoryServer opens (or re-opens, resuming parked jobs) a
// trajectory server over the given durable state directory.
func NewTrajectoryServer(opts ServeOptions) (*TrajectoryServer, error) {
	return serve.New(opts)
}

// GEMMFLOPs returns the global GEMM FLOP counter (2·m·n·k per call, the
// paper's measurement mechanism); ResetGEMMFLOPs zeroes it.
func GEMMFLOPs() int64 { return linalg.FLOPs() }

// ResetGEMMFLOPs zeroes the global GEMM FLOP counter and returns the
// value it held.
func ResetGEMMFLOPs() int64 { return linalg.ResetFLOPs() }

// DefaultTuner is the process-wide runtime GEMM auto-tuner (§V-G).
// Disable it (DefaultTuner.Enabled = false) for ablation studies.
var DefaultTuner = autotune.Default
