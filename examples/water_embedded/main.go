// Water_embedded: the electrostatically embedded many-body expansion
// (EE-MBE, DESIGN.md §8) on a water cluster through the public API.
// Phase 1 derives per-monomer Mulliken charges (optionally iterated to
// self-consistency); phase 2 evaluates every MBE term in the resulting
// point-charge field. The embedded MBE2 energy lands closer to the
// supersystem reference than vacuum MBE2, and a short embedded NVE
// trajectory demonstrates that the analytic embedded forces conserve
// energy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/fragmd/fragmd"
)

func main() {
	sys := fragmd.WaterCluster(4)
	fmt.Printf("system: %d atoms, %d electrons\n", sys.N(), sys.NumElectrons())

	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{MaxOrder: 2})
	if err != nil {
		log.Fatal(err)
	}
	eval := fragmd.NewHFPotential("sto-3g", true)

	super, _, err := eval.Evaluate(sys)
	if err != nil {
		log.Fatal(err)
	}
	vac, err := frag.Compute(eval)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := frag.ComputeEmbedded(eval, nil, fragmd.EmbedOptions{SCC: 1, Damping: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supersystem RI-HF:   %.10f Ha\n", super)
	fmt.Printf("vacuum MBE2:         %.10f Ha  (error %+.3e)\n", vac.Energy, vac.Energy-super)
	fmt.Printf("embedded MBE2:       %.10f Ha  (error %+.3e, %d SCC rounds)\n",
		emb.Energy, emb.Energy-super, emb.SCCRounds)
	var qO float64
	for i, q := range emb.Charges {
		if sys.Atoms[i].Z == 8 {
			qO += q / 4
		}
	}
	fmt.Printf("mean O Mulliken charge in the embedding field: %+.4f e\n\n", qO)

	fmt.Println("4 steps of embedded NVE AIMD (0.5 fs, 120 K, 1 worker):")
	fmt.Printf("%6s %18s %12s\n", "step", "Etot (Ha)", "drift (µHa)")
	eng, err := fragmd.NewEngine(frag, eval, fragmd.EngineOptions{
		Workers: 1, Async: true, Dt: 0.5 * fragmd.AtomicTimePerFs,
		Embed: &fragmd.EmbedOptions{SCC: 1, Damping: 0.3},
	})
	if err != nil {
		log.Fatal(err)
	}
	state := fragmd.NewMDState(frag.Geom.Clone())
	state.SampleVelocities(120, rand.New(rand.NewSource(1)))
	if _, err := eng.Run(state, 4, func(st fragmd.StepStats) {
		fmt.Printf("%6d %18.8f %12.2f\n", st.Step, st.Etot, st.Drift*1e6)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnote: the charges are re-derived from the SCF density every step;")
	fmt.Println("the small systematic drift is the neglected charge-response force")
	fmt.Println("∂q/∂R — the standard frozen-charge EE-MBE gradient (DESIGN.md §8).")
}
