// Water box: periodic MBE2 molecular dynamics through the public API.
// A 3×3×3 TIP3P-style water lattice with an orthorhombic cell runs a
// short NVE trajectory on the Lennard-Jones surrogate potential — every
// distance in the fragmentation path (dimer selection, fragment
// extraction, pair interactions) uses the minimum-image convention, so
// molecules near one face interact with images of molecules near the
// opposite face. The dimer cutoff is kept under half the shortest box
// edge, the usual minimum-image safety margin.
package main

import (
	"fmt"
	"log"

	"github.com/fragmd/fragmd"
)

func main() {
	sys := fragmd.WaterBox(3, 3, 3, 1)
	c := sys.Cell
	fmt.Printf("system: %d atoms in a %.2f × %.2f × %.2f Å periodic cell\n",
		sys.N(),
		c.L[0]*fragmd.AngstromPerBohr, c.L[1]*fragmd.AngstromPerBohr, c.L[2]*fragmd.AngstromPerBohr)

	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{
		MaxOrder:    2,
		DimerCutoff: 4.0 * fragmd.BohrPerAngstrom, // < L/2 = 4.66 Å
	})
	if err != nil {
		log.Fatal(err)
	}
	eval := fragmd.NewLennardJonesPotential()

	res, err := frag.Compute(eval)
	if err != nil {
		log.Fatal(err)
	}
	terms := frag.Terms()
	fmt.Printf("MBE2/LJ energy: %.8f Ha  (%d monomers, %d dimers within 4 Å min-image)\n",
		res.Energy, len(terms.Monomers), len(terms.Dimers))

	fmt.Println("\n10 steps of periodic NVE MD (0.5 fs, 150 K):")
	fmt.Printf("%6s %18s %12s\n", "step", "Etot (Ha)", "drift (µHa)")
	var e0 float64
	_, _, err = fragmd.RunAIMD(frag, eval, 150, 0.5, 10, 1, func(st fragmd.StepStats) {
		if st.Step == 0 {
			e0 = st.Etot
		}
		fmt.Printf("%6d %18.8f %12.2f\n", st.Step, st.Etot, (st.Etot-e0)*1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
}
