// Auto-tuning demo: shows the runtime GEMM strategy selection (paper
// §V-G) in action — the same logical product executed through all four
// streaming variants plus the packed register-blocked engine, timed
// in-situ, then locked to the winner; the tuned shapes and their
// measured spread are printed afterwards.
package main

import (
	"fmt"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/linalg"
)

func main() {
	// Three RI-MP2-like shapes: square-ish, tall-skinny, panel.
	shapes := [][3]int{{240, 4096, 240}, {48, 65536, 48}, {96, 16384, 96}}
	tuner := autotune.New()
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := linalg.NewMat(m, k)
		b := linalg.NewMat(k, n)
		for i := range a.Data {
			a.Data[i] = float64(i%17) * 1e-3
		}
		for i := range b.Data {
			b.Data[i] = float64(i%13) * 1e-3
		}
		c := linalg.NewMat(m, n)
		// 8 calls: the first 5 trial the candidates (four streaming
		// variants + the packed engine), the rest use the winner.
		for call := 0; call < 8; call++ {
			tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
		}
	}
	fmt.Println("shape                     best  trial GFLOP/s [NN NT TN TT PK]          spread")
	for _, st := range tuner.Snapshot() {
		fmt.Printf("(%4d×%6d)·(%6d×%4d)  %-4s  [%6.2f %6.2f %6.2f %6.2f %6.2f]  %4.0f%%\n",
			st.M, st.K, st.K, st.N, st.BestName(),
			st.GFLOPS[0], st.GFLOPS[1], st.GFLOPS[2], st.GFLOPS[3], st.GFLOPS[4], st.SpeedupPct)
	}
	fmt.Println("\npaper Table IV saw up to 20× spread between variants on MI250X;")
	fmt.Println("the in-situ trial phase costs nothing because every call does useful work.")
}
