// Urea-crystal cutoff analysis: the paper's Fig. 5 workflow — evaluate
// every dimer and trimer ΔE of a urea crystal sphere at the RI-MP2
// level, plot |ΔE| against centroid distance, and pick the cutoffs where
// contributions drop below 0.1 kJ/mol.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"github.com/fragmd/fragmd"
)

func main() {
	radius := flag.Float64("radius", 6.5, "crystal sphere radius in Å")
	flag.Parse()

	sys := fragmd.UreaCrystalSphere(*radius)
	nmol := sys.N() / 8
	fmt.Printf("urea sphere: radius %.1f Å, %d molecules, %d electrons\n",
		*radius, nmol, sys.NumElectrons())

	frag, err := fragmd.FragmentByMolecule(sys, 8, 1, fragmd.FragmentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := frag.Compute(fragmd.NewRIMP2Potential("sto-3g", false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MBE3/RI-MP2 lattice-section energy: %.8f Ha\n\n", res.Energy)

	fmt.Printf("%10s %7s %14s\n", "dist (Å)", "order", "|ΔE| (kJ/mol)")
	suggestDimer, suggestTrimer := 0.0, 0.0
	for _, ct := range frag.Contributions(res) {
		kj := math.Abs(ct.DeltaE) * fragmd.KJPerMolPerHa
		fmt.Printf("%10.2f %7d %14.4f\n", ct.Dist*fragmd.AngstromPerBohr, ct.Order, kj)
		if kj > 0.1 {
			d := ct.Dist * fragmd.AngstromPerBohr
			if ct.Order == 2 && d > suggestDimer {
				suggestDimer = d
			}
			if ct.Order == 3 && d > suggestTrimer {
				suggestTrimer = d
			}
		}
	}
	fmt.Printf("\ncutoff suggestion (outermost >0.1 kJ/mol contribution):\n")
	fmt.Printf("  dimers:  %.1f Å\n  trimers: %.1f Å\n", suggestDimer, suggestTrimer)
	fmt.Println("(paper §VII-C adopts 15.3 Å for the production urea runs)")
}
