// Quickstart: MBE3/RI-MP2 energy and analytic gradient of a small water
// cluster through the public API, compared against the unfragmented
// supersystem (exact for three monomers), plus a few NVE AIMD steps.
package main

import (
	"fmt"
	"log"

	"github.com/fragmd/fragmd"
)

func main() {
	sys := fragmd.WaterCluster(3)
	fmt.Printf("system: %d atoms, %d electrons\n", sys.N(), sys.NumElectrons())

	frag, err := fragmd.FragmentByMolecule(sys, 3, 1, fragmd.FragmentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eval := fragmd.NewRIMP2Potential("sto-3g", false)

	fragmd.ResetGEMMFLOPs()
	res, err := frag.Compute(eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MBE3/RI-MP2 energy:     %.10f Ha  (%d polymers)\n", res.Energy, res.NPolymers)

	eSuper, _, err := eval.Evaluate(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supersystem RI-MP2:     %.10f Ha  (MBE3 is exact for 3 monomers)\n", eSuper)
	fmt.Printf("difference:             %.3e Ha\n", res.Energy-eSuper)
	fmt.Printf("GEMM FLOPs so far:      %.3e\n\n", float64(fragmd.GEMMFLOPs()))

	fmt.Println("5 steps of asynchronous NVE AIMD (0.5 fs, 150 K):")
	fmt.Printf("%6s %18s %12s\n", "step", "Etot (Ha)", "drift (µHa)")
	var e0 float64
	_, _, err = fragmd.RunAIMD(frag, eval, 150, 0.5, 5, 1, func(st fragmd.StepStats) {
		if st.Step == 0 {
			e0 = st.Etot
		}
		fmt.Printf("%6d %18.8f %12.2f\n", st.Step, st.Etot, (st.Etot-e0)*1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
}
