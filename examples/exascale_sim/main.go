// Exascale simulation: rerun the paper's record configuration — the
// 63,854-molecule (2,043,328-electron) urea cluster on 9,400 Frontier
// nodes — through the discrete-event machine model, reporting step
// latency, sustained PFLOP/s and fraction of peak (paper Table V:
// 25.6 min/step, 1006.7 PFLOP/s, 59 % of peak).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/fragmd/fragmd"
)

func main() {
	mols := flag.Int("molecules", 63854, "urea molecules (63854 = the paper's record run)")
	nodes := flag.Int("nodes", 9400, "Frontier nodes")
	steps := flag.Int("steps", 3, "AIMD steps")
	flag.Parse()

	fmt.Printf("building workload: %d urea molecules, 4 per monomer, 15.3 Å cutoffs...\n", *mols)
	w := fragmd.UreaWorkload(*mols, 4, 15.3, 15.3)
	fmt.Printf("  %s\n\n", w)

	m := fragmd.Frontier()
	for _, async := range []bool{true, false} {
		r, err := fragmd.Simulate(w, m, fragmd.SimOptions{Nodes: *nodes, Steps: *steps, Async: async})
		if err != nil {
			log.Fatal(err)
		}
		mode := "async"
		if !async {
			mode = "sync "
		}
		fmt.Printf("%s: %6.1f min/step | %7.1f PFLOP/s sustained | %4.1f%% of peak | %.2f ZFLOP/step\n",
			mode, r.AvgStep/60, r.PFLOPS, 100*r.PeakFraction, r.TotalFLOPs/float64(r.Steps)/1e21)
	}
	fmt.Println("\npaper Table V: 25.6 min/step, 1006.7 PFLOP/s, 59% of Frontier's FP64 peak")
}
