// Protein-fibril AIMD: the paper's 6PQ5/2BEG use case — a β-strand
// fibril fragmented into residue-sized monomers with hydrogen caps,
// integrated with the asynchronous time-step engine, reporting energy
// conservation and the async-vs-sync step latency.
//
// Flags select a quick surrogate-potential run (default) or a real
// RI-MP2 run on a very small fibril (-qc).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fragmd/fragmd"
)

func main() {
	qc := flag.Bool("qc", false, "use RI-MP2/sto-3g forces on a 2-strand fibril (slow)")
	strands := flag.Int("strands", 4, "number of β strands")
	residues := flag.Int("residues", 6, "residues per strand")
	steps := flag.Int("steps", 20, "AIMD steps")
	flag.Parse()

	var eval fragmd.Evaluator
	if *qc {
		*strands, *residues, *steps = 2, 2, 3
		eval = fragmd.NewRIMP2Potential("sto-3g", false)
	} else {
		eval = fragmd.NewLennardJonesPotential()
	}
	sys, monomers := fragmd.BetaFibril(*strands, *residues)
	fmt.Printf("β-fibril analogue: %d strands × %d residues, %d atoms, %d electrons, %d monomers\n",
		*strands, *residues, sys.N(), sys.NumElectrons(), len(monomers))

	frag, err := fragmd.NewFragmentation(sys, monomers, fragmd.FragmentOptions{
		DimerCutoff:  22 * fragmd.BohrPerAngstrom,
		TrimerCutoff: 9 * fragmd.BohrPerAngstrom,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(async bool) (drift float64, wall time.Duration) {
		eng, err := fragmd.NewEngine(frag, eval, fragmd.EngineOptions{
			Workers: 4, Async: async, Dt: 0.5 * fragmd.AtomicTimePerFs,
		})
		if err != nil {
			log.Fatal(err)
		}
		state := fragmd.NewMDState(sys.Clone())
		start := time.Now()
		var e0 float64
		stats, err := eng.Run(state, *steps, nil)
		if err != nil {
			log.Fatal(err)
		}
		wall = time.Since(start)
		e0 = stats[0].Etot
		for _, st := range stats {
			if d := st.Etot - e0; d > drift || -d > drift {
				if d < 0 {
					d = -d
				}
				drift = d
			}
		}
		return drift, wall
	}

	driftA, wallA := run(true)
	fmt.Printf("async: %d steps in %v, max |ΔE| = %.3e Ha\n", *steps, wallA, driftA)
	driftS, wallS := run(false)
	fmt.Printf("sync:  %d steps in %v, max |ΔE| = %.3e Ha\n", *steps, wallS, driftS)
	if wallA < wallS {
		fmt.Printf("async throughput gain: %.1f%% (paper §VII-A: 24–40%%)\n",
			100*(wallS.Seconds()/wallA.Seconds()-1))
	}
}
