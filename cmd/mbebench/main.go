// Command mbebench regenerates the paper's tables and figures.
//
// Usage:
//
//	mbebench [-full] <experiment>...
//	mbebench -list
//
// Experiments: table1 fig1 table2 table3 fig3 table4 gemm autotune fig5
// fig6 async warmstart embed hier resilience netcoord neighbor serve
// fig7 fig8 table5 all
//
// By default workloads are shrunk to development-box scale; -full runs
// the paper-size configurations (the exascale experiments remain
// discrete-event simulations — see DESIGN.md §2).
//
// The simulated experiments (hier resilience fig7 fig8 table5, and
// async's cluster half) honour -seed and -jitter: -jitter adds
// ±fractional runtime noise to the machine model's task costs and -seed
// makes those draws reproducible run-to-run. Exception: hier
// substitutes ±10 % jitter when -jitter is 0 (its work-stealing path
// needs load imbalance to exist) and prints the value it used.
//
// The resilience experiment sweeps simulated per-worker node MTBF
// against throughput, recovered attempts, lost work and restart
// downtime (DESIGN.md §7); every run must still complete every time
// step.
//
// The gemm experiment additionally honours -bench-json (write the
// machine-readable GFLOP/s report, conventionally BENCH_gemm.json),
// -baseline (gate tracked shapes against a committed report) and
// -max-regress (allowed GFLOP/s drop in percent, default 25); a gated
// regression makes the process exit 1. This is the CI bench job
// (see DESIGN.md §5).
//
// The neighbor experiment sweeps cell-list polymer enumeration and
// EE-MBE field setup over growing periodic water boxes, fits the
// log-log scaling exponent, and fails when it exceeds 1.2 — the O(N)
// acceptance gate for the fragmentation path's neighbor search. It
// honours the same -bench-json/-baseline/-max-regress trio
// (conventionally BENCH_neighbor.json); the baseline gate compares the
// fitted exponent and the same-run cell-vs-brute speedup, both of which
// survive machine changes.
//
// The serve experiment load-tests the multi-tenant trajectory server
// (DESIGN.md §12) over localhost HTTP and honours the same trio:
// -bench-json writes BENCH_serve.json (latency percentiles, jobs/sec,
// fairness, drain-audit counters), -baseline gates p50/p99/jobs-per-
// second against a committed report, and -max-regress sets the
// tolerance. Fairness (≤ 2× across tenants) and drain integrity (zero
// lost or duplicated steps) are absolute gates applied every run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/fragmd/fragmd/internal/bench"
)

var experiments = []struct {
	name string
	fn   func(*bench.Config)
	desc string
}{
	{"table1", bench.Table1, "performance-attribute summary"},
	{"fig1", bench.Fig1Table2, "accuracy-vs-size landscape (also: table2)"},
	{"table3", bench.Table3, "Gly_n single-time-step latency vs conventional"},
	{"fig3", bench.Fig3, "RI-HF vs conventional-HF gradient ablation"},
	{"table4", bench.Table4, "DGEMM variant performance on RI-MP2 shapes"},
	{"gemm", bench.GemmBench, "GEMM engine microbenchmarks (BENCH_gemm.json)"},
	{"autotune", bench.AutotuneAblation, "runtime GEMM auto-tuning speedup (§V-G)"},
	{"fig5", bench.Fig5, "dimer/trimer contribution decay and cutoffs"},
	{"fig6", bench.Fig6, "NVE energy conservation with async time steps"},
	{"async", bench.AsyncAblation, "async vs sync time-step latency (§VII-A)"},
	{"warmstart", bench.WarmStartAblation, "cold vs warm-start SCF iterations and wall per AIMD step"},
	{"embed", bench.Embed, "EE-MBE accuracy vs supersystem + two-phase scheduling cost (§8)"},
	{"hier", bench.Hier, "hierarchical group coordinators vs flat scheduler (§VII)"},
	{"resilience", bench.Resilience, "failure injection: throughput and lost work vs node MTBF"},
	{"netcoord", bench.NetCoord, "network backend A/B oracle: live localhost TCP vs simulation"},
	{"neighbor", bench.NeighborBench, "cell-list O(N) scaling sweep + exponent gate (BENCH_neighbor.json)"},
	{"serve", bench.ServeBench, "trajectory-server load test: latency/fairness/drain (BENCH_serve.json)"},
	{"fig7", bench.Fig7, "strong scaling on Perlmutter/Frontier models"},
	{"fig8", bench.Fig8, "weak scaling at 4 polymers/GCD"},
	{"table5", bench.Table5, "record runs: million-electron urea, 2BEG latency"},
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// testHookFlagSet, when non-nil, observes the fully-registered FlagSet
// just before Parse. It is the seam for the docs/CLI.md cross-check
// test and must stay nil in production.
var testHookFlagSet func(*flag.FlagSet)

// run is the testable entry point: it parses argv, executes the named
// experiments against stdout, and returns a process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run paper-size configurations")
	list := fs.Bool("list", false, "list experiments")
	benchJSON := fs.String("bench-json", "", "write the gemm/serve machine-readable report to this path")
	baseline := fs.String("baseline", "", "gate the gemm/serve report against this committed baseline")
	maxRegress := fs.Float64("max-regress", 25, "allowed regression vs baseline (GFLOP/s, latency, jobs/sec), percent")
	seed := fs.Int64("seed", 0, "cluster-simulator RNG seed for reproducible fig7/fig8/table5/hier runs (0 = default)")
	jitter := fs.Float64("jitter", 0, "simulated task-runtime noise, fraction in [0,1) (0 = deterministic model; hier substitutes 0.1)")
	if testHookFlagSet != nil {
		testHookFlagSet(fs)
	}
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range experiments {
			fmt.Fprintf(stdout, "  %-10s %s\n", e.name, e.desc)
		}
		return 0
	}
	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: mbebench [-full] <experiment>|all ... (-list to enumerate)")
		return 2
	}
	cfg := &bench.Config{
		Quick:         !*full,
		Out:           stdout,
		BenchJSON:     *benchJSON,
		Baseline:      *baseline,
		MaxRegressPct: *maxRegress,
		Seed:          *seed,
		Jitter:        *jitter,
	}
	runOne := func(name string) bool {
		for _, e := range experiments {
			if e.name == name || (name == "table2" && e.name == "fig1") {
				start := time.Now()
				fmt.Fprintf(stdout, "==== %s ====\n", e.name)
				e.fn(cfg)
				fmt.Fprintf(stdout, "---- %s done in %.1fs ----\n\n", e.name, time.Since(start).Seconds())
				return true
			}
		}
		return false
	}
	for _, name := range args {
		if name == "all" {
			for _, e := range experiments {
				runOne(e.name)
			}
			continue
		}
		if !runOne(name) {
			fmt.Fprintf(stderr, "unknown experiment %q (-list to enumerate)\n", name)
			return 2
		}
	}
	if len(cfg.Failures) > 0 {
		for _, f := range cfg.Failures {
			fmt.Fprintf(stderr, "FAIL: %s\n", f)
		}
		return 1
	}
	return 0
}
