// Command mbebench regenerates the paper's tables and figures.
//
// Usage:
//
//	mbebench [-full] <experiment>...
//	mbebench -list
//
// Experiments: table1 fig1 table2 table3 fig3 table4 autotune fig5 fig6
// async fig7 fig8 table5 all
//
// By default workloads are shrunk to development-box scale; -full runs
// the paper-size configurations (the exascale experiments remain
// discrete-event simulations — see DESIGN.md §2).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fragmd/fragmd/internal/bench"
)

var experiments = []struct {
	name string
	fn   func(*bench.Config)
	desc string
}{
	{"table1", bench.Table1, "performance-attribute summary"},
	{"fig1", bench.Fig1Table2, "accuracy-vs-size landscape (also: table2)"},
	{"table3", bench.Table3, "Gly_n single-time-step latency vs conventional"},
	{"fig3", bench.Fig3, "RI-HF vs conventional-HF gradient ablation"},
	{"table4", bench.Table4, "DGEMM variant performance on RI-MP2 shapes"},
	{"autotune", bench.AutotuneAblation, "runtime GEMM auto-tuning speedup (§V-G)"},
	{"fig5", bench.Fig5, "dimer/trimer contribution decay and cutoffs"},
	{"fig6", bench.Fig6, "NVE energy conservation with async time steps"},
	{"async", bench.AsyncAblation, "async vs sync time-step latency (§VII-A)"},
	{"fig7", bench.Fig7, "strong scaling on Perlmutter/Frontier models"},
	{"fig8", bench.Fig8, "weak scaling at 4 polymers/GCD"},
	{"table5", bench.Table5, "record runs: million-electron urea, 2BEG latency"},
}

func main() {
	full := flag.Bool("full", false, "run paper-size configurations")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mbebench [-full] <experiment>|all ... (-list to enumerate)")
		os.Exit(2)
	}
	cfg := &bench.Config{Quick: !*full, Out: os.Stdout}
	run := func(name string) bool {
		for _, e := range experiments {
			if e.name == name || (name == "table2" && e.name == "fig1") {
				start := time.Now()
				fmt.Printf("==== %s ====\n", e.name)
				e.fn(cfg)
				fmt.Printf("---- %s done in %.1fs ----\n\n", e.name, time.Since(start).Seconds())
				return true
			}
		}
		return false
	}
	for _, name := range args {
		if name == "all" {
			for _, e := range experiments {
				run(e.name)
			}
			continue
		}
		if !run(name) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (-list to enumerate)\n", name)
			os.Exit(2)
		}
	}
}
