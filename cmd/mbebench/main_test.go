package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// -list must enumerate every registered experiment, including the
// warm-start ablation, and exit 0.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, e := range experiments {
		if !strings.Contains(s, e.name) {
			t.Errorf("-list missing experiment %q", e.name)
		}
	}
	if !strings.Contains(s, "warmstart") {
		t.Error("-list missing the warmstart experiment")
	}
}

// Smoke: a cheap experiment must produce a non-empty framed report.
func TestRunTable1(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"==== table1 ====", "Table I", "done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The table2 alias must resolve to the fig1 experiment.
func TestRunTable2Alias(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"table2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Error("table2 alias did not run the Fig. 1 / Table II experiment")
	}
}

// Bad usage paths: no args and unknown experiments exit 2; -h exits 0.
func TestRunUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no-args exit code %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h exit code %d, want 0", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown-flag exit code %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("unknown-experiment exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Error("missing unknown-experiment diagnostic")
	}
}

// The gemm experiment must write the JSON report, gate against a
// baseline, and turn regressions into exit 1. Slow (runs real GEMMs),
// so skipped under -short.
func TestRunGemmBenchFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("gemm microbenchmarks are slow; run without -short")
	}
	dir := t.TempDir()
	jsonPath := dir + "/BENCH_gemm.json"

	var out, errOut bytes.Buffer
	if code := run([]string{"-bench-json", jsonPath, "gemm"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "asm/go") {
		t.Error("gemm table missing from output")
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(data), "\"tracked\": true") {
		t.Error("report has no tracked rows")
	}

	// Same-machine rerun against the just-written baseline passes with
	// a generous tolerance.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", jsonPath, "-max-regress", "60", "gemm"}, &out, &errOut); code != 0 {
		t.Fatalf("baseline self-check exit %d, stderr: %s", code, errOut.String())
	}

	// An impossible baseline must fail the run with exit 1.
	inflated := strings.ReplaceAll(string(data), "\"gflops\": ", "\"gflops\": 99")
	badPath := dir + "/inflated.json"
	if err := os.WriteFile(badPath, []byte(inflated), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", badPath, "gemm"}, &out, &errOut); code != 1 {
		t.Fatalf("inflated baseline: exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "regressed") {
		t.Errorf("missing regression diagnostic: %s", errOut.String())
	}
}
