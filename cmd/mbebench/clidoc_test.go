package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestCLIDocMatchesFlags pins the mbebench table in docs/CLI.md to the
// real flag set via flag.VisitAll: adding, removing, or re-defaulting
// a flag without updating the manual fails here. (The fragmd sections
// are checked by the sibling test in cmd/fragmd.)
func TestCLIDocMatchesFlags(t *testing.T) {
	var fs *flag.FlagSet
	testHookFlagSet = func(got *flag.FlagSet) { fs = got }
	defer func() { testHookFlagSet = nil }()
	run(nil, io.Discard, io.Discard)
	if fs == nil {
		t.Fatal("run() never registered a flag set")
	}

	data, err := os.ReadFile("../../docs/CLI.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|([^|]*)\\|")
	doc := map[string]string{}
	inSection := false
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(ln, "## ") {
			inSection = strings.TrimSpace(strings.TrimPrefix(ln, "## ")) == "mbebench"
			continue
		}
		if inSection {
			if m := row.FindStringSubmatch(ln); m != nil {
				doc[m[1]] = strings.TrimSpace(m[2])
			}
		}
	}
	if len(doc) == 0 {
		t.Fatal(`docs/CLI.md has no flag table under "## mbebench"`)
	}

	fs.VisitAll(func(f *flag.Flag) {
		def, ok := doc[f.Name]
		if !ok {
			usage := strings.ReplaceAll(f.Usage, "|", `\|`)
			want := ""
			if f.DefValue != "" {
				want = "`" + f.DefValue + "`"
			}
			t.Errorf("docs/CLI.md mbebench table is missing -%s; add:\n%s",
				f.Name, fmt.Sprintf("| `-%s` | %s | %s |", f.Name, want, usage))
			return
		}
		want := ""
		if f.DefValue != "" {
			want = "`" + f.DefValue + "`"
		}
		if def != want {
			t.Errorf("docs/CLI.md documents mbebench -%s default as %q, flag says %q", f.Name, def, want)
		}
		delete(doc, f.Name)
	})
	for name := range doc {
		t.Errorf("docs/CLI.md documents mbebench -%s, which the binary does not define", name)
	}
}
