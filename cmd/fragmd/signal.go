// Signal-driven graceful drain (DESIGN.md §12): SIGINT/SIGTERM used to
// kill fragmd mid-chunk even with -checkpoint set, discarding work the
// resilience layer was built to preserve. The first signal now asks the
// run to stop at its next safe boundary; a second signal is an
// unconditional exit for operators who cannot wait.
package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// drainer carries the stop-at-next-boundary request from the signal
// handler to the run loops. runMD polls it between trajectory chunks —
// the checkpoint cadence, so "drained" always means "checkpointed".
type drainer struct {
	flag atomic.Bool
}

// drained reports whether a graceful stop was requested. Nil receivers
// (runs without signal handling, e.g. library use) never drain.
func (d *drainer) drained() bool { return d != nil && d.flag.Load() }

// armSignals installs the two-stage handler: the first SIGINT/SIGTERM
// sets the drain flag (the run finishes its current chunk, writes its
// checkpoint, and exits 0), the second exits immediately with the
// conventional 128+SIGTERM status. The returned stop function releases
// the handler; it is safe to call more than once.
func armSignals(errOut io.Writer) (*drainer, func()) {
	return armSignalsExit(errOut, os.Exit)
}

// armSignalsExit is armSignals with the second-signal escape hatch as
// a parameter, the seam tests use to observe the hard-exit path
// without dying.
func armSignalsExit(errOut io.Writer, exit func(code int)) (*drainer, func()) {
	d := &drainer{}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-ch:
				if d.flag.CompareAndSwap(false, true) {
					fmt.Fprintf(errOut, "fragmd: %v: draining — finishing the current chunk and checkpointing (signal again to exit now)\n", sig)
					continue
				}
				fmt.Fprintf(errOut, "fragmd: %v: exiting immediately\n", sig)
				exit(128 + int(syscall.SIGTERM))
			case <-done:
				return
			}
		}
	}()
	var stopped atomic.Bool
	return d, func() {
		if stopped.CompareAndSwap(false, true) {
			signal.Stop(ch)
			close(done)
		}
	}
}
