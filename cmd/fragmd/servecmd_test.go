package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/molecule"
)

// End-to-end through the subcommand: start "fragmd serve" on an
// ephemeral port, submit a job over real HTTP, watch it finish, then
// deliver one SIGTERM and require a clean (exit 0) drain.
func TestRunServeSmokeAndSignalDrain(t *testing.T) {
	dir := t.TempDir()
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runServe([]string{"-listen", "127.0.0.1:0", "-state-dir", dir}, &out, &errOut)
	}()

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var base string
	waitFor(t, "listen address", func() bool {
		m := addrRe.FindStringSubmatch(out.String())
		if m == nil {
			return false
		}
		base = "http://" + m[1]
		return true
	})

	var xyz strings.Builder
	if err := molecule.WaterCluster(2).WriteXYZ(&xyz); err != nil {
		t.Fatal(err)
	}
	spec := map[string]interface{}{
		"tenant": "smoke", "xyz": xyz.String(), "potential": "lj", "steps": 3,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || view.ID == "" {
		t.Fatalf("submit: status %d, view %+v", resp.StatusCode, view)
	}

	waitFor(t, "job completion", func() bool {
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var v struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			return false
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("job reached %q", v.Status)
		}
		return v.Status == "done"
	})

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe returned %v, want nil (exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not drain after SIGTERM\nout:\n%s\nerr:\n%s", out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "draining") {
		t.Fatalf("missing drain diagnostic:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "drained; restart with the same -state-dir") {
		t.Fatalf("missing drain completion message:\n%s", out.String())
	}
}

// Usage errors: -state-dir is mandatory, and a bad fleet evaluator spec
// is rejected before anything listens.
func TestRunServeValidation(t *testing.T) {
	cases := [][]string{
		{},
		{"-state-dir", "", "-listen", "127.0.0.1:0"},
		{"-state-dir", "x", "-fleet-listen", "127.0.0.1:0", "-potential", "nope"},
	}
	for _, argv := range cases {
		var out, errOut bytes.Buffer
		if err := runServe(argv, &out, &errOut); err != errUsage {
			t.Fatalf("runServe(%q) = %v, want errUsage", argv, err)
		}
	}
}

// The serve subcommand must be reachable through the top-level CLI
// dispatcher.
func TestRunDispatchesServe(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"serve"}, &out, &errOut); err != errUsage {
		t.Fatalf("run([serve]) = %v, want errUsage (missing -state-dir)", err)
	}
	if !strings.Contains(errOut.String(), "-state-dir is required") {
		t.Fatalf("missing diagnostic:\n%s", errOut.String())
	}
}
