package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/sched"
)

// A nil drainer must never drain: runMD is also called by code paths
// that do not arm signal handling (bench mode, library use).
func TestNilDrainerNeverDrains(t *testing.T) {
	var d *drainer
	if d.drained() {
		t.Fatal("nil drainer reports drained")
	}
}

// ljSystem builds a small LJ-evaluated water cluster for fast MD runs.
func ljSystem(t *testing.T) (*molecule.Geometry, *fragment.Fragmentation, fragment.Evaluator) {
	t.Helper()
	g := molecule.WaterCluster(3)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval, err := netcoord.EvalSpec{Potential: "lj"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, f, eval
}

// A drain requested mid-run must stop runMD at the next checkpoint
// boundary with a nil error (exit 0), and the checkpoint it leaves
// behind must resume to a trajectory identical to an uninterrupted
// one — the whole point of draining over dying.
func TestRunMDDrainStopsAtCheckpointAndResumes(t *testing.T) {
	opts := sched.Options{Workers: 1, Async: true, Dt: 0.5 * chem.AtomicTimePerFs}
	const steps, ckEvery = 6, 2

	// Uninterrupted reference. MD evolves the geometry in place, so
	// every run gets its own freshly built system.
	g, f, eval := ljSystem(t)
	var ref bytes.Buffer
	if err := runMD(&ref, g, f, eval, opts, steps, 150, "", 0, false, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Drained run: prep runs before each chunk, so a flag set on the
	// first call is seen at the top of the loop after chunk one —
	// exactly the window a real SIGTERM lands in.
	ckPath := filepath.Join(t.TempDir(), "traj.ck")
	d := &drainer{}
	prep := func(*sched.Options) error {
		d.flag.Store(true)
		return nil
	}
	g, f, eval = ljSystem(t)
	var out bytes.Buffer
	if err := runMD(&out, g, f, eval, opts, steps, 150, ckPath, ckEvery, false, prep, d); err != nil {
		t.Fatalf("drained run failed: %v", err)
	}
	if want := "drained at step 2/6; resume with -resume -checkpoint " + ckPath; !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, out.String())
	}

	g, f, eval = ljSystem(t)
	var resumed bytes.Buffer
	if err := runMD(&resumed, g, f, eval, opts, steps, 150, ckPath, ckEvery, true, nil, nil); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	// Stitch step lines from both runs and compare Etot per step against
	// the reference trajectory.
	refE := parseStepEnergies(t, ref.String())
	got := parseStepEnergies(t, out.String()+resumed.String())
	if len(got) != len(refE) {
		t.Fatalf("drain+resume reported %d steps, reference %d", len(got), len(refE))
	}
	for step, e := range refE {
		if r, ok := got[step]; !ok || math.Abs(r-e) > 1e-10 {
			t.Fatalf("step %d: drain+resume Etot %.12f, reference %.12f", step, got[step], e)
		}
	}
}

// Draining without -checkpoint still stops promptly but must warn that
// the remaining steps are gone.
func TestRunMDDrainWithoutCheckpointWarns(t *testing.T) {
	g, f, eval := ljSystem(t)
	opts := sched.Options{Workers: 1, Async: true, Dt: 0.5 * chem.AtomicTimePerFs}
	d := &drainer{}
	d.flag.Store(true)
	var out bytes.Buffer
	if err := runMD(&out, g, f, eval, opts, 4, 150, "", 0, false, nil, d); err != nil {
		t.Fatal(err)
	}
	if want := "no -checkpoint: remaining steps are not resumable"; !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, out.String())
	}
}

// parseStepEnergies maps step number → Etot from runMD's table output.
func parseStepEnergies(t *testing.T, out string) map[int]float64 {
	t.Helper()
	got := map[int]float64{}
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) != 7 {
			continue
		}
		step, err := strconv.Atoi(f[0])
		if err != nil {
			continue
		}
		etot, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			continue
		}
		got[step] = etot
	}
	return got
}

// The two-stage handler itself: the first real signal flips the drain
// flag, the second routes to the exit seam with the conventional
// 128+SIGTERM status.
func TestArmSignalsTwoStage(t *testing.T) {
	var errOut syncBuffer
	var code atomic.Int64
	code.Store(-1)
	exited := make(chan struct{})
	d, stop := armSignalsExit(&errOut, func(c int) {
		code.Store(int64(c))
		close(exited)
	})
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drain flag", func() bool { return d.drained() })

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not reach the exit seam")
	}
	if got := code.Load(); got != 128+int64(syscall.SIGTERM) {
		t.Fatalf("exit code %d, want %d", got, 128+int(syscall.SIGTERM))
	}
	if !strings.Contains(errOut.String(), "draining") || !strings.Contains(errOut.String(), "exiting immediately") {
		t.Fatalf("unexpected diagnostics:\n%s", errOut.String())
	}
	stop()
	stop() // stop is idempotent
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
