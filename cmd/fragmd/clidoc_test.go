package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
)

// captureFlagSet runs the CLI far enough to register every flag of the
// surface selected by argv and returns the FlagSet via the pre-Parse
// test hook (the run itself fails fast on validation and is ignored).
func captureFlagSet(t *testing.T, argv []string) *flag.FlagSet {
	t.Helper()
	var got *flag.FlagSet
	testHookFlagSet = func(fs *flag.FlagSet) { got = fs }
	defer func() { testHookFlagSet = nil }()
	run(argv, io.Discard, io.Discard)
	if got == nil {
		t.Fatalf("run(%q) never registered a flag set", argv)
	}
	return got
}

// docFlagRow renders the canonical docs/CLI.md table row for a flag —
// the exact form the cross-check expects, offered in failure messages
// so fixing the doc is a copy-paste.
func docFlagRow(f *flag.Flag) string {
	def := ""
	if f.DefValue != "" {
		def = "`" + f.DefValue + "`"
	}
	usage := strings.ReplaceAll(f.Usage, "|", `\|`)
	return fmt.Sprintf("| `-%s` | %s | %s |", f.Name, def, usage)
}

// parseDocSection returns flag name → documented default cell for the
// table under the given "## header" section of docs/CLI.md.
func parseDocSection(t *testing.T, path, header string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|([^|]*)\\|")
	flags := map[string]string{}
	inSection := false
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(ln, "## ") {
			inSection = strings.TrimSpace(strings.TrimPrefix(ln, "## ")) == header
			continue
		}
		if !inSection {
			continue
		}
		if m := row.FindStringSubmatch(ln); m != nil {
			flags[m[1]] = strings.TrimSpace(m[2])
		}
	}
	if len(flags) == 0 {
		t.Fatalf("docs/CLI.md has no flag table under %q", "## "+header)
	}
	return flags
}

// checkDocSection cross-checks one CLI surface against its docs/CLI.md
// table: every registered flag must be documented with the right
// default, and every documented flag must exist.
func checkDocSection(t *testing.T, path, header string, fs *flag.FlagSet) {
	t.Helper()
	doc := parseDocSection(t, path, header)
	fs.VisitAll(func(f *flag.Flag) {
		def, ok := doc[f.Name]
		if !ok {
			t.Errorf("docs/CLI.md %q table is missing -%s; add:\n%s", header, f.Name, docFlagRow(f))
			return
		}
		want := ""
		if f.DefValue != "" {
			want = "`" + f.DefValue + "`"
		}
		if def != want {
			t.Errorf("docs/CLI.md %q documents -%s default as %q, flag says %q", header, f.Name, def, want)
		}
		delete(doc, f.Name)
	})
	for name := range doc {
		t.Errorf("docs/CLI.md %q documents -%s, which %s does not define", header, name, header)
	}
}

// TestCLIDocMatchesFlags pins docs/CLI.md to the real flag sets via
// flag.VisitAll: adding, removing, or re-defaulting any fragmd flag
// without updating the manual fails here.
func TestCLIDocMatchesFlags(t *testing.T) {
	const doc = "../../docs/CLI.md"
	for _, c := range []struct {
		header string
		argv   []string
	}{
		{"fragmd", nil},
		{"fragmd worker", []string{"worker"}},
		{"fragmd coordinate", []string{"coordinate"}},
		{"fragmd serve", []string{"serve"}},
	} {
		checkDocSection(t, doc, c.header, captureFlagSet(t, c.argv))
	}
}
