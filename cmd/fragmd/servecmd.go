// "fragmd serve" — the multi-tenant trajectory server (DESIGN.md §12):
// an HTTP/JSON API over internal/serve. See docs/CLI.md for the flag
// reference and docs of the wire API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/serve"
)

// runServe implements "fragmd serve": listen for job submissions, run
// trajectories under admission control and tenant fair-share, and drain
// gracefully on SIGINT/SIGTERM — in-flight jobs park at their next
// checkpoint, queued jobs stay durably queued, and a restarted server
// on the same -state-dir resumes all of them.
func runServe(argv []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("fragmd serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	listen := fs.String("listen", ":8737", "TCP address to serve the HTTP API on (use :0 for an ephemeral port)")
	stateDir := fs.String("state-dir", "", "durable state directory for job records and checkpoints (required)")
	maxActive := fs.Int("max-active", 4, "trajectories run concurrently")
	maxQueued := fs.Int("max-queued", 256, "admitted-but-not-running jobs across all tenants; beyond it submissions get 503")
	ckEvery := fs.Int("checkpoint-every", 5, "per-job checkpoint cadence in MD steps — also the drain latency bound")
	jobWorkers := fs.Int("job-workers", 1, "default evaluation goroutines per job when a spec leaves workers unset")
	fleetListen := fs.String("fleet-listen", "", "TCP address to accept netcoord workers on; empty = evaluate in-process")
	fleetMin := fs.Int("fleet-min-workers", 1, "worker processes each trajectory chunk waits for (fleet mode)")
	heartbeat := fs.Duration("heartbeat", netcoord.DefaultHeartbeat, "worker liveness ping interval (fleet mode; silence past 5× evicts)")
	pot := fs.String("potential", "rimp2", "evaluator the fleet's workers build: rimp2 | hf | hf4c | lj (fleet mode; jobs must match)")
	basisName := fs.String("basis", "sto-3g", "orbital basis for the fleet evaluator: sto-3g | dzp (fleet mode)")
	scs := fs.Bool("scs", false, "fleet evaluator reports SCS-MP2 energies (fleet mode)")
	riScreen := fs.Float64("ri-screen", 0, "Schwarz screening threshold for the fleet evaluator (0 = default 1e-12, negative disables; fleet mode)")
	if testHookFlagSet != nil {
		testHookFlagSet(fs)
	}
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if *stateDir == "" {
		fmt.Fprintln(errOut, "fragmd serve: -state-dir is required")
		fs.Usage()
		return errUsage
	}

	opts := serve.Options{
		StateDir: *stateDir, MaxActive: *maxActive, MaxQueued: *maxQueued,
		CheckpointEvery: *ckEvery, JobWorkers: *jobWorkers,
		FleetMinWorkers: *fleetMin,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(errOut, format+"\n", args...)
		},
	}
	if *fleetListen != "" {
		spec := netcoord.EvalSpec{Potential: *pot, Basis: *basisName, SCS: *scs, RIScreen: *riScreen}
		if _, err := spec.Build(); err != nil {
			fmt.Fprintf(errOut, "fragmd serve: %v\n", err)
			fs.Usage()
			return errUsage
		}
		c, err := netcoord.Listen(*fleetListen, netcoord.CoordinatorOptions{
			Eval: spec, Heartbeat: *heartbeat, Logf: opts.Logf,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		fmt.Fprintf(out, "fleet coordinator listening on %s\n", c.Addr())
		opts.Coordinator, opts.FleetEval = c, spec
	}
	s, err := serve.New(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(out, "serving on %s (state: %s)\n", ln.Addr(), *stateDir)

	// Two-stage shutdown, mirroring armSignals: the first signal drains
	// — admissions 503, running jobs park at their next checkpoint, and
	// only then does the listener close (clients keep polling statuses
	// through the drain). The second signal exits immediately; the state
	// directory still resumes cleanly because every mutation is durable.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(errOut, "fragmd serve: %v: draining — parking in-flight jobs at their next checkpoint (signal again to exit now)\n", sig)
		go func() {
			sig := <-sigCh
			fmt.Fprintf(errOut, "fragmd serve: %v: exiting immediately\n", sig)
			os.Exit(128 + int(syscall.SIGTERM))
		}()
		if err := s.Drain(context.Background()); err != nil {
			fmt.Fprintf(errOut, "fragmd serve: %v\n", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s.Close()
	fmt.Fprintf(out, "drained; restart with the same -state-dir to resume parked jobs\n")
	return nil
}
