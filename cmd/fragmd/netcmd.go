// Distributed mode (DESIGN.md §10): "fragmd coordinate" drives an MD
// trajectory over worker processes connected via TCP, and
// "fragmd worker" is one such process. See the README's distributed
// quickstart and docs/CLI.md for the full flag reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/sched"
)

// runWorkerCmd implements "fragmd worker": dial a coordinator, offer
// evaluation slots, and serve tasks until the process is killed.
func runWorkerCmd(argv []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("fragmd worker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	connect := fs.String("connect", "", "coordinator address host:port (required)")
	slots := fs.Int("slots", 1, "tasks this process evaluates concurrently")
	warm := fs.Bool("warm", false, "warm-start each polymer's SCF from its previous converged density (worker-local cache)")
	skipTol := fs.Float64("skip-tol", 0, "skip re-evaluating polymers that moved less than this (Å, 0 = off; approximate)")
	maxSkip := fs.Int("max-skip", 0, "staleness bound: max consecutive skipped evaluations per polymer (0 = default)")
	redial := fs.Duration("redial", 500*time.Millisecond, "pause between reconnect attempts after a lost coordinator (negative = exit after one session)")
	if testHookFlagSet != nil {
		testHookFlagSet(fs)
	}
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if *connect == "" {
		fmt.Fprintln(errOut, "fragmd worker: -connect is required")
		fs.Usage()
		return errUsage
	}
	if *slots < 1 {
		fmt.Fprintln(errOut, "fragmd worker: -slots must be at least 1")
		fs.Usage()
		return errUsage
	}
	return netcoord.RunWorker(context.Background(), *connect, netcoord.WorkerOptions{
		Slots:     *slots,
		WarmStart: *warm,
		SkipTol:   *skipTol * chem.BohrPerAngstrom,
		MaxSkip:   *maxSkip,
		Redial:    *redial,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	})
}

// runCoordinate implements "fragmd coordinate": listen for workers,
// then run the MD trajectory with every fragment evaluation shipped to
// the fleet. The coordinator owns the physics configuration — workers
// receive the evaluator specification in the handshake — and the
// trajectory, including checkpoint/resume, stays on this process; a
// coordinator restarted with -resume reassembles redialling workers
// and continues the checkpointed trajectory.
func runCoordinate(argv []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("fragmd coordinate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	listen := fs.String("listen", ":9137", "TCP address to accept workers on (use :0 for an ephemeral port)")
	minWorkers := fs.Int("min-workers", 1, "worker processes to wait for before each trajectory chunk")
	waitTimeout := fs.Duration("wait-timeout", 0, "give up when the fleet stays below -min-workers this long (0 = wait forever)")
	heartbeat := fs.Duration("heartbeat", netcoord.DefaultHeartbeat, "worker liveness ping interval (silence past 5× evicts)")
	pot := fs.String("potential", "rimp2", "evaluator the workers build: rimp2 | hf | hf4c | lj")
	in := fs.String("in", "", "input XYZ file (required)")
	basisName := fs.String("basis", "sto-3g", "orbital basis: sto-3g | dzp")
	apm := fs.Int("atoms-per-monomer", 3, "atoms per monomer for fragmentation")
	dimerCut := fs.Float64("dimer-cut", 0, "dimer centroid cutoff in Å (0 = none)")
	trimerCut := fs.Float64("trimer-cut", 0, "trimer centroid cutoff in Å (0 = none)")
	steps := fs.Int("steps", 10, "MD steps")
	dt := fs.Float64("dt", 0.5, "MD time step in fs")
	temp := fs.Float64("temp", 150, "initial temperature in K")
	sync := fs.Bool("sync", false, "use synchronous time steps")
	groups := fs.Int("groups", 0, "group coordinators (0 = one per worker process)")
	batch := fs.Int("batch", 0, "tasks per coordinator batch transfer (0/1 = single-task dispatch)")
	steal := fs.Bool("steal", false, "enable work stealing between group coordinators")
	scs := fs.Bool("scs", false, "report SCS-MP2 energies")
	riScreen := fs.Float64("ri-screen", 0, "Schwarz screening threshold for three-center (μν|P) integrals (0 = default 1e-12, negative disables)")
	embed := fs.Bool("embed", false, "electrostatically embed every MBE term in the other monomers' Mulliken charges (EE-MBE)")
	embedSCC := fs.Int("embed-scc", 0, "self-consistent charge refinement rounds beyond the vacuum round")
	embedDamp := fs.Float64("embed-damp", 0.4, "SCC charge mixing q ← (1−d)·q_new + d·q_old, 0 ≤ d < 1")
	ckPath := fs.String("checkpoint", "", "trajectory checkpoint file")
	ckEvery := fs.Int("checkpoint-every", 0, "checkpoint every N completed MD steps (0 = only at the end)")
	resume := fs.Bool("resume", false, "resume the trajectory from -checkpoint instead of starting fresh")
	retries := fs.Int("retries", 1, "per-task failure retry budget; a dead worker's reclaimed attempts draw on it, so keep it ≥ 1")
	speculate := fs.Bool("speculate", false, "re-dispatch straggling tasks to idle workers (first copy wins)")
	if testHookFlagSet != nil {
		testHookFlagSet(fs)
	}
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if *in == "" {
		fmt.Fprintln(errOut, "fragmd coordinate: -in is required")
		fs.Usage()
		return errUsage
	}
	if *minWorkers < 1 {
		fmt.Fprintln(errOut, "fragmd coordinate: -min-workers must be at least 1")
		fs.Usage()
		return errUsage
	}
	if (*resume || *ckEvery > 0) && *ckPath == "" {
		fmt.Fprintln(errOut, "fragmd coordinate: -resume and -checkpoint-every need -checkpoint")
		fs.Usage()
		return errUsage
	}
	if *ckEvery < 0 {
		fmt.Fprintln(errOut, "fragmd coordinate: -checkpoint-every must not be negative")
		fs.Usage()
		return errUsage
	}
	spec := netcoord.EvalSpec{Potential: *pot, Basis: *basisName, SCS: *scs, RIScreen: *riScreen}
	if _, err := spec.Build(); err != nil {
		fmt.Fprintf(errOut, "fragmd coordinate: %v\n", err)
		fs.Usage()
		return errUsage
	}
	var embedOpts *fragment.EmbedOptions
	if *embed {
		embedOpts = &fragment.EmbedOptions{SCC: *embedSCC, Damping: *embedDamp}
		if err := embedOpts.Validate(); err != nil {
			fmt.Fprintf(errOut, "fragmd coordinate: %v\n", err)
			return errUsage
		}
	}

	file, err := os.Open(*in)
	if err != nil {
		return err
	}
	g, err := molecule.ParseXYZ(file)
	file.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "system: %d atoms, %d electrons\n", g.N(), g.NumElectrons())
	opts := fragment.Options{}
	if *dimerCut > 0 {
		opts.DimerCutoff = *dimerCut * chem.BohrPerAngstrom
	}
	if *trimerCut > 0 {
		opts.TrimerCutoff = *trimerCut * chem.BohrPerAngstrom
	}
	f, err := fragment.ByMolecule(g, *apm, 1, opts)
	if err != nil {
		return err
	}
	terms := f.Terms()
	fmt.Fprintf(out, "fragmentation: %d monomers, %d dimers, %d trimers\n",
		len(terms.Monomers), len(terms.Dimers), len(terms.Trimers))

	c, err := netcoord.Listen(*listen, netcoord.CoordinatorOptions{
		Eval: spec, Heartbeat: *heartbeat,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(errOut, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(out, "coordinator listening on %s\n", c.Addr())

	engOpts := sched.Options{
		Async: !*sync, Dt: *dt * chem.AtomicTimePerFs,
		Groups: *groups, Batch: *batch, Steal: *steal,
		MaxRetries: *retries, Speculate: *speculate,
	}
	if embedOpts != nil {
		engOpts.Embed = embedOpts
	}
	// Each trajectory chunk re-snapshots the fleet, so workers that
	// died are dropped and workers that (re)joined since the last chunk
	// — including after a coordinator restart — pick up work again.
	prep := func(o *sched.Options) error {
		ctx := context.Background()
		if *waitTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *waitTimeout)
			defer cancel()
		}
		if _, err := c.WaitWorkers(ctx, *minWorkers); err != nil {
			return err
		}
		x := c.Executor()
		o.Exec = x
		o.Workers = 0 // adopt the snapshot's slot count
		if *groups == 0 {
			o.Groups = x.Procs()
		}
		fmt.Fprintf(out, "fleet: %d worker processes, %d slots\n", x.Procs(), x.Workers())
		return nil
	}
	drain, stop := armSignals(errOut)
	defer stop()
	return runMD(out, g, f, nil, engOpts, *steps, *temp, *ckPath, *ckEvery, *resume, prep, drain)
}
