// Command fragmd runs MBE3/RI-MP2 calculations on an XYZ geometry:
// single-point energies, analytic gradients, NVE AIMD with the
// asynchronous time-step engine, or a cold-vs-warm-start dynamics
// benchmark.
//
// Usage:
//
//	fragmd -in system.xyz [-mode energy|grad|md|bench] [-basis sto-3g|dzp]
//	       [-atoms-per-monomer N] [-dimer-cut Å] [-trimer-cut Å] [-ri-screen t] [-f32]
//	       [-box Lx,Ly,Lz] [-pbc]
//	       [-embed] [-embed-scc N] [-embed-tol e] [-embed-damp d]
//	       [-steps N] [-dt fs] [-temp K] [-sync] [-workers N]
//	       [-groups N] [-batch N] [-steal]
//	       [-warm] [-skip-tol Å] [-max-skip N]
//	       [-checkpoint file] [-checkpoint-every N] [-resume]
//	       [-retries N] [-speculate]
//
// Periodic boundaries (DESIGN.md §13): -box attaches an orthorhombic
// cell ("L" for cubic or "Lx,Ly,Lz", Å) and switches every distance in
// the fragmentation path to the minimum-image convention; it overrides
// any cell= comment in the XYZ. -pbc asserts the run is periodic —
// it errors out unless a cell arrives via -box or the XYZ comment —
// so scripts cannot silently fall back to open boundaries.
//
// Embedding knobs (EE-MBE, DESIGN.md §8): -embed evaluates every MBE
// term in the point-charge field of the other monomers' Mulliken
// charges; -embed-scc adds self-consistent charge refinement rounds
// (each monomer re-derived in the others' charges), mixed with
// -embed-damp; -embed-tol stops the refinement early in energy/grad
// modes (MD always runs all rounds — its task graph is static). MD
// output gains a drift column, the NVE conservation diagnostic.
//
// Scheduler knobs: -workers sizes the evaluator pool (default
// GOMAXPROCS); -groups/-batch/-steal engage the hierarchical
// group-coordinator layer shared with the cluster simulator
// (DESIGN.md §6) — batching amortises dispatch, stealing rebalances
// uneven groups. The knobs change task placement only, never the
// trajectory.
//
// Warm-start knobs (-warm, -skip-tol, -max-skip) enable incremental
// evaluation across MD steps: -warm reuses each polymer's converged
// density as the next SCF guess (exact; fewer iterations), while
// -skip-tol > 0 additionally skips re-evaluating polymers whose atoms
// all moved less than the tolerance since their last real evaluation
// (approximate; -max-skip bounds the staleness). -mode bench runs the
// same trajectory cold and warm and reports SCF-iterations-per-step
// and wall-per-step for both.
//
// Resilience knobs (md mode; DESIGN.md §7): -checkpoint names a
// trajectory checkpoint file, written atomically every
// -checkpoint-every completed steps (0 = only at the end) — a killed
// run restarts from it with -resume and reproduces the uninterrupted
// trajectory's energies. -retries gives each polymer task a failure
// budget (re-queued on a surviving worker) instead of aborting on
// first failure; -speculate re-dispatches straggling tasks to idle
// workers.
//
// The geometry is fragmented into monomers of equal atom count (for
// molecular clusters built molecule-by-molecule); covalent systems use
// the library API for residue-level fragmentation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/fragmd/fragmd/internal/bench"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/mp2"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/resilience"
	"github.com/fragmd/fragmd/internal/scf"
	"github.com/fragmd/fragmd/internal/sched"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// errUsage marks command-line usage errors whose diagnostics have
// already been printed (exit 2, matching the pre-FlagSet behaviour).
var errUsage = errors.New("fragmd: usage error")

// testHookFlagSet, when non-nil, observes every fully-registered
// FlagSet just before Parse. It is the seam for the docs/CLI.md
// cross-check test and must stay nil in production.
var testHookFlagSet func(*flag.FlagSet)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h/-help: usage already printed, exit 0.
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		log.Fatal(err)
	}
}

// run is the testable entry point: it parses argv, writes reports to
// out and diagnostics to errOut. The first argument may name a
// subcommand — "worker" or "coordinate", the distributed roles, or
// "serve", the trajectory server — and everything else is the classic
// single-process CLI.
func run(argv []string, out, errOut io.Writer) error {
	if len(argv) > 0 {
		switch argv[0] {
		case "worker":
			return runWorkerCmd(argv[1:], out, errOut)
		case "coordinate":
			return runCoordinate(argv[1:], out, errOut)
		case "serve":
			return runServe(argv[1:], out, errOut)
		}
	}
	fs := flag.NewFlagSet("fragmd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	in := fs.String("in", "", "input XYZ file (required)")
	mode := fs.String("mode", "energy", "energy | grad | md | bench")
	basisName := fs.String("basis", "sto-3g", "orbital basis: sto-3g | dzp")
	apm := fs.Int("atoms-per-monomer", 3, "atoms per monomer for fragmentation")
	dimerCut := fs.Float64("dimer-cut", 0, "dimer centroid cutoff in Å (0 = none)")
	trimerCut := fs.Float64("trimer-cut", 0, "trimer centroid cutoff in Å (0 = none)")
	box := fs.String("box", "", "periodic cell edge lengths in Å, \"L\" (cubic) or \"Lx,Ly,Lz\"; overrides any cell= comment in the XYZ")
	pbc := fs.Bool("pbc", false, "require periodic boundaries: error unless a cell comes from -box or the XYZ's cell= comment")
	steps := fs.Int("steps", 10, "MD steps")
	dt := fs.Float64("dt", 0.5, "MD time step in fs")
	temp := fs.Float64("temp", 150, "initial temperature in K")
	sync := fs.Bool("sync", false, "use synchronous time steps")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	groups := fs.Int("groups", 0, "group coordinators between the scheduler and the workers (0/1 = flat)")
	batch := fs.Int("batch", 0, "tasks per coordinator batch transfer (0/1 = single-task dispatch)")
	steal := fs.Bool("steal", false, "enable work stealing between group coordinators")
	scs := fs.Bool("scs", false, "report SCS-MP2 energies")
	f32 := fs.Bool("f32", false, "store packed GEMM panels in float32 (f64 accumulation) on the bandwidth-bound RI contractions; ~1e-7 relative energy error")
	riScreen := fs.Float64("ri-screen", 0, "Schwarz screening threshold for three-center (μν|P) integrals (0 = default 1e-12, negative disables)")
	embed := fs.Bool("embed", false, "electrostatically embed every MBE term in the other monomers' Mulliken charges (EE-MBE)")
	embedSCC := fs.Int("embed-scc", 0, "self-consistent charge refinement rounds beyond the vacuum round")
	embedTol := fs.Float64("embed-tol", 0, "stop SCC early when max |Δq| falls below this (e); energy/grad modes only, 0 = run all rounds")
	embedDamp := fs.Float64("embed-damp", 0.4, "SCC charge mixing q ← (1−d)·q_new + d·q_old, 0 ≤ d < 1")
	warm := fs.Bool("warm", false, "warm-start each polymer's SCF from its previous converged density")
	skipTol := fs.Float64("skip-tol", 0, "skip re-evaluating polymers that moved less than this (Å, 0 = off; approximate)")
	maxSkip := fs.Int("max-skip", 0, "staleness bound: max consecutive skipped evaluations per polymer (0 = default)")
	ckPath := fs.String("checkpoint", "", "trajectory checkpoint file (md mode)")
	ckEvery := fs.Int("checkpoint-every", 0, "checkpoint every N completed MD steps (0 = only at the end)")
	resume := fs.Bool("resume", false, "resume the trajectory from -checkpoint instead of starting fresh")
	retries := fs.Int("retries", 0, "per-task failure retry budget (0 = failures are fatal)")
	speculate := fs.Bool("speculate", false, "re-dispatch straggling tasks to idle workers (first copy wins)")
	if testHookFlagSet != nil {
		testHookFlagSet(fs)
	}
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// fs already printed the diagnostic and usage.
		return errUsage
	}

	if *in == "" {
		fmt.Fprintln(errOut, "fragmd: -in is required")
		fs.Usage()
		return errUsage
	}
	if (*resume || *ckEvery > 0) && *ckPath == "" {
		fmt.Fprintln(errOut, "fragmd: -resume and -checkpoint-every need -checkpoint")
		fs.Usage()
		return errUsage
	}
	if *ckEvery < 0 {
		fmt.Fprintln(errOut, "fragmd: -checkpoint-every must not be negative")
		fs.Usage()
		return errUsage
	}
	file, err := os.Open(*in)
	if err != nil {
		return err
	}
	g, err := molecule.ParseXYZ(file)
	file.Close()
	if err != nil {
		return err
	}
	if *box != "" {
		cell, err := parseBoxFlag(*box)
		if err != nil {
			fmt.Fprintf(errOut, "fragmd: -box: %v\n", err)
			fs.Usage()
			return errUsage
		}
		g.Cell = cell
	}
	if *pbc && g.Cell == nil {
		fmt.Fprintln(errOut, "fragmd: -pbc needs a cell: pass -box or use an XYZ with a cell= comment")
		fs.Usage()
		return errUsage
	}
	if c := g.Cell; c != nil {
		fmt.Fprintf(out, "system: %d atoms, %d electrons, periodic cell %g x %g x %g Å\n",
			g.N(), g.NumElectrons(),
			c.L[0]*chem.AngstromPerBohr, c.L[1]*chem.AngstromPerBohr, c.L[2]*chem.AngstromPerBohr)
	} else {
		fmt.Fprintf(out, "system: %d atoms, %d electrons\n", g.N(), g.NumElectrons())
	}

	opts := fragment.Options{}
	if *dimerCut > 0 {
		opts.DimerCutoff = *dimerCut * chem.BohrPerAngstrom
	}
	if *trimerCut > 0 {
		opts.TrimerCutoff = *trimerCut * chem.BohrPerAngstrom
	}
	f, err := fragment.ByMolecule(g, *apm, 1, opts)
	if err != nil {
		return err
	}
	terms := f.Terms()
	fmt.Fprintf(out, "fragmentation: %d monomers, %d dimers, %d trimers\n",
		len(terms.Monomers), len(terms.Dimers), len(terms.Trimers))

	prec := linalg.F64
	if *f32 {
		prec = linalg.F32
	}
	eval := &potential.RIMP2{Basis: *basisName, SCS: *scs,
		SCFOpts: scf.Options{RIScreenThresh: *riScreen, Precision: prec},
		MP2Opts: mp2.Options{Precision: prec}}
	var embedOpts *fragment.EmbedOptions
	if *embed {
		embedOpts = &fragment.EmbedOptions{SCC: *embedSCC, SCCTol: *embedTol, Damping: *embedDamp}
		if err := embedOpts.Validate(); err != nil {
			fmt.Fprintf(errOut, "fragmd: %v\n", err)
			return errUsage
		}
	}
	engOpts := sched.Options{
		Workers: *workers, Async: !*sync, Dt: *dt * chem.AtomicTimePerFs,
		Groups: *groups, Batch: *batch, Steal: *steal,
		WarmStart: *warm, SkipTol: *skipTol * chem.BohrPerAngstrom, MaxSkip: *maxSkip,
		MaxRetries: *retries, Speculate: *speculate,
	}
	if embedOpts != nil {
		// The engine's task graph is static, so the SCC tolerance only
		// applies to the serial energy/grad paths; MD runs all rounds.
		engEmbed := *embedOpts
		engEmbed.SCCTol = 0
		engOpts.Embed = &engEmbed
	}
	linalg.ResetFLOPs()

	switch *mode {
	case "energy", "grad":
		var res *fragment.Result
		if embedOpts != nil {
			res, err = f.ComputeEmbedded(eval, nil, *embedOpts)
		} else {
			res, err = f.Compute(eval)
		}
		if err != nil {
			return err
		}
		if embedOpts != nil {
			fmt.Fprintf(out, "EE-MBE3/RI-MP2 energy: %.10f Ha (SCC rounds %d, far-pair residual %.3e Ha)\n",
				res.Energy, res.SCCRounds, res.EPairResidual)
		} else {
			fmt.Fprintf(out, "MBE3/RI-MP2 energy: %.10f Ha\n", res.Energy)
		}
		if *mode == "grad" {
			fmt.Fprintln(out, "gradient (Ha/Bohr):")
			for i := 0; i < g.N(); i++ {
				fmt.Fprintf(out, "  %-3s % .8f % .8f % .8f\n", chem.Symbol(g.Atoms[i].Z),
					res.Gradient[3*i], res.Gradient[3*i+1], res.Gradient[3*i+2])
			}
		}
	case "md":
		drain, stop := armSignals(errOut)
		defer stop()
		if err := runMD(out, g, f, eval, engOpts, *steps, *temp, *ckPath, *ckEvery, *resume, nil, drain); err != nil {
			return err
		}
	case "bench":
		// Self-describing bench output: which micro-kernel the packed
		// GEMM engine dispatches to on this machine, and why.
		feats := linalg.CPUFeatures()
		if feats == "" {
			feats = "none"
		}
		fmt.Fprintf(out, "gemm microkernel: %s (cpu features: %s)\n", linalg.MicroKernelName(), feats)
		if err := runWarmBench(out, f, eval, engOpts, *steps, *temp); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	fmt.Fprintf(out, "GEMM FLOPs executed: %.3e\n", float64(linalg.FLOPs()))
	return nil
}

// parseBoxFlag parses the -box value — "L" (cubic) or "Lx,Ly,Lz",
// edge lengths in Å — into a validated cell in Bohr.
func parseBoxFlag(s string) (*molecule.Cell, error) {
	parts := strings.Split(s, ",")
	var l [3]float64
	switch len(parts) {
	case 1:
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad edge length %q", parts[0])
		}
		l = [3]float64{v, v, v}
	case 3:
		for k, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad edge length %q", p)
			}
			l[k] = v
		}
	default:
		return nil, fmt.Errorf(`want "L" or "Lx,Ly,Lz", got %q`, s)
	}
	return molecule.NewCellAngstrom(l[0], l[1], l[2])
}

// runMD integrates an NVE trajectory with optional checkpoint/restart:
// the run proceeds in chunks, writing an atomic checkpoint (MD state +
// warm-start cache) after each, and -resume rebuilds everything from
// the file. A resumed (or continuation) chunk re-evaluates forces at
// the checkpointed geometry as its local step 0 — the same boundary
// semantics as chaining two engine runs — so the assembled trajectory
// reproduces an uninterrupted one; the duplicated boundary step is not
// re-reported. prep, when non-nil, runs before each chunk's engine is
// built and may rewrite the options — the distributed coordinator uses
// it to re-snapshot the worker fleet at every chunk boundary. drain,
// when non-nil, is polled between chunks: a requested drain stops the
// run at its last checkpoint and returns nil (exit 0), the graceful
// half of the two-stage signal handler.
func runMD(out io.Writer, g *molecule.Geometry, f *fragment.Fragmentation, eval fragment.Evaluator,
	engOpts sched.Options, steps int, temp float64, ckPath string, ckEvery int, resume bool,
	prep func(*sched.Options) error, drain *drainer) error {
	// One cache shared across chunks (and checkpoints) when incremental
	// evaluation is on; a cold run stays cold.
	cache := engOpts.Cache
	if cache == nil && (engOpts.WarmStart || engOpts.SkipTol > 0) {
		cache = warmstart.NewCache(engOpts.SkipTol, engOpts.MaxSkip)
	}
	engOpts.Cache = cache

	var state *md.State
	done := 0 // completed global steps
	// The drift baseline is the trajectory's step-0 total energy; a
	// resumed run reads it from the checkpoint so its drift column
	// continues the uninterrupted run's, instead of resetting to the
	// restart boundary and masking accumulated drift.
	var e0 float64
	haveE0 := false
	if resume {
		ck, err := resilience.Load(ckPath)
		if err != nil {
			return err
		}
		if !ck.Matches(g) {
			return fmt.Errorf("fragmd: checkpoint %s was taken from a different system", ckPath)
		}
		if ck.Dt != engOpts.Dt {
			// Integrating a resumed trajectory at a different time step
			// silently breaks the reproduces-the-uninterrupted-run
			// guarantee; make the mismatch loud and actionable.
			return fmt.Errorf("fragmd: checkpoint %s was integrated at dt=%g fs; rerun with -dt %g",
				ckPath, ck.Dt/chem.AtomicTimePerFs, ck.Dt/chem.AtomicTimePerFs)
		}
		if state, err = ck.State(); err != nil {
			return err
		}
		if cache != nil {
			if err := ck.RestoreCache(cache); err != nil {
				return err
			}
		}
		done = ck.StepsDone
		if ck.HasE0 {
			e0, haveE0 = ck.E0, true
		}
		fmt.Fprintf(out, "resumed from %s at step %d/%d (%d warm states)\n", ckPath, done, steps, len(ck.Warm))
		if ck.TotalSteps > 0 && ck.TotalSteps != steps {
			fmt.Fprintf(out, "note: checkpointed run was headed for %d steps; continuing to %d\n",
				ck.TotalSteps, steps)
		}
		if done >= steps {
			fmt.Fprintf(out, "trajectory already complete\n")
			return nil
		}
	} else {
		state = md.NewState(g)
		state.SampleVelocities(temp, rand.New(rand.NewSource(1)))
	}

	fmt.Fprintf(out, "%6s %18s %14s %10s %11s %9s %8s\n", "step", "Etot (Ha)", "Epot (Ha)", "T (K)", "drift (Ha)", "SCF-iter", "skipped")
	for done < steps {
		if drain.drained() {
			if ckPath == "" {
				fmt.Fprintf(out, "drained at step %d/%d (no -checkpoint: remaining steps are not resumable)\n", done, steps)
			} else {
				fmt.Fprintf(out, "drained at step %d/%d; resume with -resume -checkpoint %s\n", done, steps, ckPath)
			}
			return nil
		}
		// A continuation chunk re-runs the boundary step as its local
		// step 0 (offset 1); chunk length covers ckEvery new steps.
		offset := 0
		if done > 0 {
			offset = 1
		}
		chunk := steps - done + offset
		if ckEvery > 0 && chunk > ckEvery+offset {
			chunk = ckEvery + offset
		}
		if prep != nil {
			if err := prep(&engOpts); err != nil {
				return err
			}
		}
		eng, err := sched.New(f, eval, engOpts)
		if err != nil {
			return err
		}
		_, err = eng.Run(state, chunk, func(st sched.StepStats) {
			if st.Step < offset {
				return // boundary step, already reported by the previous chunk
			}
			global := done - offset + st.Step
			if !haveE0 {
				e0 = st.Etot
				haveE0 = true
			}
			tK := 2 * st.Ekin / (3 * float64(g.N())) * chem.KelvinPerHartree
			fmt.Fprintf(out, "%6d %18.8f %14.8f %10.1f %11.2e %9d %8d\n",
				global, st.Etot, st.Epot, tK, st.Etot-e0, st.SCFIters, st.Skipped)
		})
		if err != nil {
			return err
		}
		done += chunk - offset
		if ckPath != "" {
			ck := resilience.Snapshot(state, done, engOpts.Dt)
			ck.TotalSteps = steps
			ck.Seed = 1
			ck.E0, ck.HasE0 = e0, haveE0
			ck.AttachCache(cache)
			if err := resilience.Save(ckPath, ck); err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint: %s (step %d/%d)\n", ckPath, done, steps)
		}
	}
	return nil
}

// runWarmBench integrates the same trajectory twice — cold and with
// warm-started SCF (plus skip reuse when configured) — and reports
// SCF-iterations-per-step and wall-per-step for both, so the speedup
// of the incremental-evaluation subsystem is measured, not asserted.
func runWarmBench(out io.Writer, f *fragment.Fragmentation, eval fragment.Evaluator, engOpts sched.Options, steps int, temp float64) error {
	// The engine reads the fragmentation read-only (positions advance
	// inside the state's cloned geometry), so both runs can share f and
	// start from identical initial conditions.
	one := func(opts sched.Options, n int) ([]sched.StepStats, error) {
		eng, err := sched.New(f, eval, opts)
		if err != nil {
			return nil, err
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(temp, rand.New(rand.NewSource(1)))
		return eng.Run(state, n, nil)
	}
	coldOpts := engOpts
	coldOpts.WarmStart, coldOpts.SkipTol, coldOpts.Cache = false, 0, nil
	// Untimed throwaway step so the global GEMM auto-tuner's variant
	// trials don't bias whichever timed run goes first.
	if _, err := one(coldOpts, 1); err != nil {
		return err
	}
	cold, err := one(coldOpts, steps)
	if err != nil {
		return err
	}
	warmOpts := engOpts
	warmOpts.WarmStart = true
	warmRun, err := one(warmOpts, steps)
	if err != nil {
		return err
	}
	bench.CompareDynamics(out, cold, warmRun)
	return nil
}
