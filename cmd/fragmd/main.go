// Command fragmd runs MBE3/RI-MP2 calculations on an XYZ geometry:
// single-point energies, analytic gradients, or NVE AIMD with the
// asynchronous time-step engine.
//
// Usage:
//
//	fragmd -in system.xyz [-mode energy|grad|md] [-basis sto-3g|dzp]
//	       [-atoms-per-monomer N] [-dimer-cut Å] [-trimer-cut Å]
//	       [-steps N] [-dt fs] [-temp K] [-sync] [-workers N]
//
// The geometry is fragmented into monomers of equal atom count (for
// molecular clusters built molecule-by-molecule); covalent systems use
// the library API for residue-level fragmentation.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

func main() {
	in := flag.String("in", "", "input XYZ file (required)")
	mode := flag.String("mode", "energy", "energy | grad | md")
	basisName := flag.String("basis", "sto-3g", "orbital basis: sto-3g | dzp")
	apm := flag.Int("atoms-per-monomer", 3, "atoms per monomer for fragmentation")
	dimerCut := flag.Float64("dimer-cut", 0, "dimer centroid cutoff in Å (0 = none)")
	trimerCut := flag.Float64("trimer-cut", 0, "trimer centroid cutoff in Å (0 = none)")
	steps := flag.Int("steps", 10, "MD steps")
	dt := flag.Float64("dt", 0.5, "MD time step in fs")
	temp := flag.Float64("temp", 150, "initial temperature in K")
	sync := flag.Bool("sync", false, "use synchronous time steps")
	workers := flag.Int("workers", 2, "worker goroutines")
	scs := flag.Bool("scs", false, "report SCS-MP2 energies")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	file, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	g, err := molecule.ParseXYZ(file)
	file.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d atoms, %d electrons\n", g.N(), g.NumElectrons())

	opts := fragment.Options{}
	if *dimerCut > 0 {
		opts.DimerCutoff = *dimerCut * chem.BohrPerAngstrom
	}
	if *trimerCut > 0 {
		opts.TrimerCutoff = *trimerCut * chem.BohrPerAngstrom
	}
	f, err := fragment.ByMolecule(g, *apm, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	terms := f.Terms()
	fmt.Printf("fragmentation: %d monomers, %d dimers, %d trimers\n",
		len(terms.Monomers), len(terms.Dimers), len(terms.Trimers))

	eval := &potential.RIMP2{Basis: *basisName, SCS: *scs}
	linalg.ResetFLOPs()

	switch *mode {
	case "energy", "grad":
		res, err := f.Compute(eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MBE3/RI-MP2 energy: %.10f Ha\n", res.Energy)
		if *mode == "grad" {
			fmt.Println("gradient (Ha/Bohr):")
			for i := 0; i < g.N(); i++ {
				fmt.Printf("  %-3s % .8f % .8f % .8f\n", chem.Symbol(g.Atoms[i].Z),
					res.Gradient[3*i], res.Gradient[3*i+1], res.Gradient[3*i+2])
			}
		}
	case "md":
		eng, err := sched.New(f, eval, sched.Options{
			Workers: *workers, Async: !*sync, Dt: *dt * chem.AtomicTimePerFs,
		})
		if err != nil {
			log.Fatal(err)
		}
		state := md.NewState(g)
		state.SampleVelocities(*temp, rand.New(rand.NewSource(1)))
		fmt.Printf("%6s %18s %14s %10s\n", "step", "Etot (Ha)", "Epot (Ha)", "T (K)")
		_, err = eng.Run(state, *steps, func(st sched.StepStats) {
			tK := 2 * st.Ekin / (3 * float64(g.N())) * chem.KelvinPerHartree
			fmt.Printf("%6d %18.8f %14.8f %10.1f\n", st.Step, st.Etot, st.Epot, tK)
		})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	fmt.Printf("GEMM FLOPs executed: %.3e\n", float64(linalg.FLOPs()))
}
