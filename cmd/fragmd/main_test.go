package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/resilience"
)

// writeWaterDimerXYZ writes a 2-monomer water dimer in XYZ (Å) and
// returns its path.
func writeWaterDimerXYZ(t *testing.T) string {
	t.Helper()
	g := molecule.WaterCluster(2)
	var b strings.Builder
	fmt.Fprintf(&b, "%d\nwater dimer (test)\n", g.N())
	for _, a := range g.Atoms {
		fmt.Fprintf(&b, "%s %.8f %.8f %.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr)
	}
	path := filepath.Join(t.TempDir(), "dimer.xyz")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// parseEnergy extracts the reported MBE energy from the output.
func parseEnergy(t *testing.T, out string) float64 {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "MBE3/RI-MP2 energy:") {
			f := strings.Fields(l)
			v, err := strconv.ParseFloat(f[len(f)-2], 64)
			if err != nil {
				t.Fatalf("cannot parse energy from %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("no energy line in output:\n%s", out)
	return 0
}

// Smoke: the energy mode on a 2-monomer water dimer must report a
// finite, chemically sensible energy and a non-empty report.
func TestRunEnergyMode(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	var out bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "energy"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"system: 6 atoms", "fragmentation: 2 monomers, 1 dimers", "GEMM FLOPs"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	e := parseEnergy(t, s)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("non-finite energy %v", e)
	}
	// Two waters at MP2/STO-3G ≈ −150 Ha; anything near that is sane.
	if e > -140 || e < -160 {
		t.Errorf("implausible water-dimer energy %.6f Ha", e)
	}
}

// -embed switches energy mode to the two-phase EE-MBE driver; the
// embedded energy must differ from vacuum, and malformed embedding
// knobs are usage errors. Three monomers are the smallest case where
// they can differ: on two, MBE2 telescopes to the supersystem and the
// embedded monomer terms cancel identically.
func TestRunEmbedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("embedded RI-MP2 energies are slow; run without -short")
	}
	g := molecule.WaterCluster(3)
	var b strings.Builder
	fmt.Fprintf(&b, "%d\nwater trimer (test)\n", g.N())
	for _, a := range g.Atoms {
		fmt.Fprintf(&b, "%s %.8f %.8f %.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr)
	}
	xyz := filepath.Join(t.TempDir(), "trimer.xyz")
	if err := os.WriteFile(xyz, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	// A tiny trimer cutoff keeps the expansion at MBE2: full MBE3 on
	// three monomers would telescope to the supersystem on both paths.
	base := []string{"-in", xyz, "-mode", "energy", "-trimer-cut", "0.1"}
	var vacOut bytes.Buffer
	if err := run(base, &vacOut, io.Discard); err != nil {
		t.Fatal(err)
	}
	var embOut bytes.Buffer
	if err := run(append(base, "-embed", "-embed-scc", "1"), &embOut, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(embOut.String(), "EE-MBE3/RI-MP2 energy:") {
		t.Fatalf("embedded output missing EE-MBE report:\n%s", embOut.String())
	}
	if !strings.Contains(embOut.String(), "SCC rounds 2") {
		t.Fatalf("embedded output missing SCC round count:\n%s", embOut.String())
	}
	vac := parseEnergy(t, vacOut.String())
	var emb float64
	for _, l := range strings.Split(embOut.String(), "\n") {
		if strings.HasPrefix(l, "EE-MBE3/RI-MP2 energy:") {
			fmt.Sscanf(strings.Fields(l)[2], "%g", &emb)
		}
	}
	if emb == 0 || math.Abs(emb-vac) < 1e-9 {
		t.Fatalf("embedding left the energy unchanged: vac %.10f emb %.10f", vac, emb)
	}
}

func TestRunEmbedFlagValidation(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	for _, args := range [][]string{
		{"-in", xyz, "-embed", "-embed-damp", "1.5"},
		{"-in", xyz, "-embed", "-embed-scc", "-2"},
		{"-in", xyz, "-embed", "-embed-tol", "-1"},
	} {
		if err := run(args, io.Discard, io.Discard); !errors.Is(err, errUsage) {
			t.Errorf("args %v: got %v, want usage error", args, err)
		}
	}
}

// Smoke: the cold-vs-warm bench mode must run a short trajectory and
// print the comparison table with totals.
func TestRunBenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 dynamics bench is slow; run without -short")
	}
	xyz := writeWaterDimerXYZ(t)
	var out bytes.Buffer
	err := run([]string{"-in", xyz, "-mode", "bench", "-steps", "3", "-dimer-cut", "0.1"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"cold SCF-iter", "warm SCF-iter", "totals", "SCF iterations saved"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench output missing %q:\n%s", want, s)
		}
	}
}

// Flag validation: a missing -in must error out as a usage error,
// unknown modes as ordinary errors, and -h as flag.ErrHelp (mapped to
// exit 0 by main).
func TestRunValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-mode", "energy"}, &out, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("missing -in: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-in is required") {
		t.Errorf("missing -in diagnostic not on stderr writer:\n%s", errOut.String())
	}
	if err := run([]string{"-h"}, &out, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	errOut.Reset()
	if err := run([]string{"-no-such-flag"}, &out, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("unknown flag: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-no-such-flag") {
		t.Errorf("unknown-flag diagnostic not on stderr writer:\n%s", errOut.String())
	}
	xyz := writeWaterDimerXYZ(t)
	err := run([]string{"-in", xyz, "-mode", "nope"}, &out, io.Discard)
	if err == nil || errors.Is(err, errUsage) {
		t.Errorf("unknown mode: got %v, want a plain error", err)
	}
}

// parseStepRows extracts "step → (Etot, Epot, drift)" from md-mode
// output (step, Etot, Epot, T, drift, SCF-iter, skipped).
func parseStepRows(t *testing.T, out string) map[int][3]float64 {
	t.Helper()
	rows := map[int][3]float64{}
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) != 7 {
			continue
		}
		step, err := strconv.Atoi(f[0])
		if err != nil {
			continue
		}
		etot, err1 := strconv.ParseFloat(f[1], 64)
		epot, err2 := strconv.ParseFloat(f[2], 64)
		drift, err3 := strconv.ParseFloat(f[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		rows[step] = [3]float64{etot, epot, drift}
	}
	return rows
}

// The restart acceptance test at the CLI level: an md run killed after
// 2 of 4 steps and resumed from its checkpoint reproduces the
// uninterrupted run's energies. The global GEMM auto-tuner is disabled
// so both runs use identical kernels (its timing-based arbitration is
// the one nondeterministic ingredient).
func TestRunMDCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 dynamics is slow; run without -short")
	}
	wasEnabled := autotune.Default.Enabled
	autotune.Default.Enabled = false
	defer func() { autotune.Default.Enabled = wasEnabled }()

	xyz := writeWaterDimerXYZ(t)
	ck := filepath.Join(t.TempDir(), "traj.ckpt")

	var full, killed, resumed bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "md", "-steps", "4"}, &full, io.Discard); err != nil {
		t.Fatal(err)
	}
	// The "killed" run: only 2 steps happen before the lights go out.
	if err := run([]string{"-in", xyz, "-mode", "md", "-steps", "2",
		"-checkpoint", ck, "-checkpoint-every", "1"}, &killed, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	if err := run([]string{"-in", xyz, "-mode", "md", "-steps", "4",
		"-checkpoint", ck, "-resume"}, &resumed, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resumed from") {
		t.Fatalf("resume did not report the restart:\n%s", resumed.String())
	}

	fullRows := parseStepRows(t, full.String())
	killedRows := parseStepRows(t, killed.String())
	resumedRows := parseStepRows(t, resumed.String())
	if len(fullRows) != 4 {
		t.Fatalf("full run reported %d steps, want 4:\n%s", len(fullRows), full.String())
	}
	if len(killedRows) != 2 {
		t.Fatalf("killed run reported %d steps, want 2", len(killedRows))
	}
	// The resumed run reports exactly the missing steps (the duplicated
	// boundary step is not re-reported).
	if _, ok := resumedRows[1]; ok {
		t.Error("resumed run re-reported an already-completed step")
	}
	for step := 2; step < 4; step++ {
		got, ok := resumedRows[step]
		if !ok {
			t.Fatalf("resumed run missing step %d:\n%s", step, resumed.String())
		}
		want := fullRows[step]
		if d := math.Abs(got[0] - want[0]); d > 1e-10 {
			t.Errorf("step %d: |ΔEtot| = %.3e Ha between resumed and uninterrupted runs", step, d)
		}
		if d := math.Abs(got[1] - want[1]); d > 1e-10 {
			t.Errorf("step %d: |ΔEpot| = %.3e Ha between resumed and uninterrupted runs", step, d)
		}
		// The drift column's baseline (step-0 Etot) rides in the
		// checkpoint, so the resumed diagnostic continues the original
		// trajectory's instead of resetting at the restart boundary.
		if d := math.Abs(got[2] - want[2]); d > 1e-10 {
			t.Errorf("step %d: resumed drift %.3e vs uninterrupted %.3e — baseline not restored",
				step, got[2], want[2])
		}
	}
	for step := 0; step < 2; step++ {
		if d := math.Abs(killedRows[step][0] - fullRows[step][0]); d > 1e-10 {
			t.Errorf("step %d: killed run diverged from full run by %.3e before the kill", step, d)
		}
	}

	// A corrupted checkpoint is refused loudly, not resumed wrongly.
	blob, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-in", xyz, "-mode", "md", "-steps", "4", "-checkpoint", ck, "-resume"},
		io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("truncated checkpoint: got %v, want a corruption error", err)
	}
}

// Checkpoint flag validation.
func TestRunCheckpointFlagValidation(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	var errOut bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "md", "-resume"}, io.Discard, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("-resume without -checkpoint: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-checkpoint") {
		t.Errorf("diagnostic missing:\n%s", errOut.String())
	}
	if err := run([]string{"-in", xyz, "-mode", "md", "-checkpoint-every", "2"}, io.Discard, io.Discard); !errors.Is(err, errUsage) {
		t.Errorf("-checkpoint-every without -checkpoint: got %v, want errUsage", err)
	}
	if err := run([]string{"-in", xyz, "-mode", "md", "-checkpoint", "x", "-checkpoint-every", "-1"}, io.Discard, io.Discard); !errors.Is(err, errUsage) {
		t.Errorf("negative -checkpoint-every: got %v, want errUsage", err)
	}
}

// Resuming at a different time step than the checkpoint was integrated
// with would silently produce a different trajectory; the CLI must
// refuse the mismatch and name the right -dt.
func TestRunResumeRejectsDtMismatch(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	ck := filepath.Join(t.TempDir(), "traj.ckpt")
	g := molecule.WaterCluster(2)
	snap := resilience.Snapshot(md.NewState(g), 1, 0.25*chem.AtomicTimePerFs)
	if err := resilience.Save(ck, snap); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", xyz, "-mode", "md", "-steps", "4", "-dt", "0.5",
		"-checkpoint", ck, "-resume"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-dt 0.25") {
		t.Errorf("dt mismatch: got %v, want an error naming -dt 0.25", err)
	}
	// The matching dt is accepted (error-free parse past the check is
	// enough: the state then integrates normally).
	var out bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "md", "-steps", "1", "-dt", "0.25",
		"-checkpoint", ck, "-resume"}, &out, io.Discard); err != nil {
		t.Fatalf("matching dt rejected: %v", err)
	}
	if !strings.Contains(out.String(), "already complete") {
		t.Errorf("steps ≤ StepsDone should report completion:\n%s", out.String())
	}
}

// Periodic flags: -box attaches a cell (reported in the system line),
// an XYZ cell= comment satisfies -pbc on its own, -pbc with no cell at
// all is a usage error, and malformed -box values are usage errors.
func TestRunBoxAndPBCFlags(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	var out bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "energy", "-box", "200", "-pbc"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "periodic cell") {
		t.Errorf("system line missing the cell:\n%s", out.String())
	}

	var errOut bytes.Buffer
	if err := run([]string{"-in", xyz, "-pbc"}, io.Discard, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("-pbc without a cell: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-pbc needs a cell") {
		t.Errorf("-pbc diagnostic not on stderr writer:\n%s", errOut.String())
	}
	for _, bad := range []string{"abc", "1,2", "1,2,3,4", "0", "-5,5,5"} {
		if err := run([]string{"-in", xyz, "-box", bad}, io.Discard, io.Discard); !errors.Is(err, errUsage) {
			t.Errorf("-box %q: got %v, want errUsage", bad, err)
		}
	}

	// A geometry written by a periodic builder round-trips its cell
	// through the XYZ comment, so -pbc passes with no -box.
	boxPath := filepath.Join(t.TempDir(), "box.xyz")
	var b bytes.Buffer
	if err := molecule.WaterBox(2, 1, 1, 1).WriteXYZ(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(boxPath, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-in", boxPath, "-mode", "energy", "-pbc"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "periodic cell") {
		t.Errorf("cell= comment not honoured:\n%s", out.String())
	}
}
