package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
)

// writeWaterDimerXYZ writes a 2-monomer water dimer in XYZ (Å) and
// returns its path.
func writeWaterDimerXYZ(t *testing.T) string {
	t.Helper()
	g := molecule.WaterCluster(2)
	var b strings.Builder
	fmt.Fprintf(&b, "%d\nwater dimer (test)\n", g.N())
	for _, a := range g.Atoms {
		fmt.Fprintf(&b, "%s %.8f %.8f %.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr)
	}
	path := filepath.Join(t.TempDir(), "dimer.xyz")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// parseEnergy extracts the reported MBE energy from the output.
func parseEnergy(t *testing.T, out string) float64 {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "MBE3/RI-MP2 energy:") {
			f := strings.Fields(l)
			v, err := strconv.ParseFloat(f[len(f)-2], 64)
			if err != nil {
				t.Fatalf("cannot parse energy from %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("no energy line in output:\n%s", out)
	return 0
}

// Smoke: the energy mode on a 2-monomer water dimer must report a
// finite, chemically sensible energy and a non-empty report.
func TestRunEnergyMode(t *testing.T) {
	xyz := writeWaterDimerXYZ(t)
	var out bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "energy"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"system: 6 atoms", "fragmentation: 2 monomers, 1 dimers", "GEMM FLOPs"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	e := parseEnergy(t, s)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("non-finite energy %v", e)
	}
	// Two waters at MP2/STO-3G ≈ −150 Ha; anything near that is sane.
	if e > -140 || e < -160 {
		t.Errorf("implausible water-dimer energy %.6f Ha", e)
	}
}

// Smoke: the cold-vs-warm bench mode must run a short trajectory and
// print the comparison table with totals.
func TestRunBenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 dynamics bench is slow; run without -short")
	}
	xyz := writeWaterDimerXYZ(t)
	var out bytes.Buffer
	err := run([]string{"-in", xyz, "-mode", "bench", "-steps", "3", "-dimer-cut", "0.1"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"cold SCF-iter", "warm SCF-iter", "totals", "SCF iterations saved"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench output missing %q:\n%s", want, s)
		}
	}
}

// Flag validation: a missing -in must error out as a usage error,
// unknown modes as ordinary errors, and -h as flag.ErrHelp (mapped to
// exit 0 by main).
func TestRunValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-mode", "energy"}, &out, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("missing -in: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-in is required") {
		t.Errorf("missing -in diagnostic not on stderr writer:\n%s", errOut.String())
	}
	if err := run([]string{"-h"}, &out, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	errOut.Reset()
	if err := run([]string{"-no-such-flag"}, &out, &errOut); !errors.Is(err, errUsage) {
		t.Errorf("unknown flag: got %v, want errUsage", err)
	}
	if !strings.Contains(errOut.String(), "-no-such-flag") {
		t.Errorf("unknown-flag diagnostic not on stderr writer:\n%s", errOut.String())
	}
	xyz := writeWaterDimerXYZ(t)
	err := run([]string{"-in", xyz, "-mode", "nope"}, &out, io.Discard)
	if err == nil || errors.Is(err, errUsage) {
		t.Errorf("unknown mode: got %v, want a plain error", err)
	}
}
