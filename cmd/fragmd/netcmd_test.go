package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
)

// argvSep joins/splits the re-exec argv in the environment (flags may
// contain spaces, never this byte).
const argvSep = "\x1f"

// TestMain re-execs the test binary as a real fragmd process when
// FRAGMD_TEST_ARGV is set — the multi-process harness the distributed
// smoke test uses, so a worker can be kill -9'd like a production
// crash. The child disables the GEMM auto-tuner to keep kernels (and
// float accumulation order) identical across every process of the
// equivalence comparison.
func TestMain(m *testing.M) {
	if argv := os.Getenv("FRAGMD_TEST_ARGV"); argv != "" {
		autotune.Default.Enabled = false
		if err := run(strings.Split(argv, argvSep), os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// syncBuffer is a bytes.Buffer safe for the coordinator goroutine to
// write while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeWaterXYZ writes an n-molecule water cluster in XYZ (Å).
func writeWaterXYZ(t *testing.T, n int) string {
	t.Helper()
	g := molecule.WaterCluster(n)
	var b strings.Builder
	fmt.Fprintf(&b, "%d\nwater cluster (test)\n", g.N())
	for _, a := range g.Atoms {
		fmt.Fprintf(&b, "%s %.8f %.8f %.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr)
	}
	path := filepath.Join(t.TempDir(), "waters.xyz")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// spawnWorker starts a worker subprocess against addr and returns it;
// cleanup kills any survivor.
func spawnWorker(t *testing.T, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FRAGMD_TEST_ARGV=worker"+argvSep+"-connect"+argvSep+addr)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// waitOutput polls the buffer until the pattern appears.
func waitOutput(t *testing.T, buf *syncBuffer, pattern string, timeout time.Duration) []string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(timeout)
	for {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("output never matched %q within %s:\n%s", pattern, timeout, buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The distributed acceptance test: an MD trajectory run by a
// coordinator over three worker *processes* — one of which is
// kill -9'd mid-run — must reproduce the single-process trajectory's
// energies to 1e-10 Ha.
func TestCoordinateSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process RI-MP2 dynamics is slow; run without -short")
	}
	wasEnabled := autotune.Default.Enabled
	autotune.Default.Enabled = false
	defer func() { autotune.Default.Enabled = wasEnabled }()

	xyz := writeWaterXYZ(t, 3)
	const steps = "3"

	var local bytes.Buffer
	if err := run([]string{"-in", xyz, "-mode", "md", "-steps", steps}, &local, io.Discard); err != nil {
		t.Fatal(err)
	}
	localRows := parseStepRows(t, local.String())
	if len(localRows) != 3 {
		t.Fatalf("local run reported %d steps, want 3:\n%s", len(localRows), local.String())
	}

	var netOut, netLog syncBuffer
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run([]string{"coordinate", "-listen", "127.0.0.1:0",
			"-min-workers", "2", "-retries", "2", "-in", xyz, "-steps", steps}, &netOut, &netLog)
	}()
	addr := waitOutput(t, &netOut, `coordinator listening on (\S+)`, 30*time.Second)[1]

	victim := spawnWorker(t, addr)
	spawnWorker(t, addr)
	spawnWorker(t, addr)

	// Kill the victim the moment the first step completes: steps 1–2
	// are still outstanding, so the fleet loses a member mid-run.
	waitOutput(t, &netOut, `(?m)^\s+0\s`, 120*time.Second)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator failed: %v\nlog:\n%s", err, netLog.String())
		}
	case <-time.After(180 * time.Second):
		t.Fatalf("coordinator never finished\nout:\n%s\nlog:\n%s", netOut.String(), netLog.String())
	}
	// The kill must have been detected as a dead connection (the
	// shutdown path logs "coordinator shut down" instead).
	if !strings.Contains(netLog.String(), "declared dead") ||
		!strings.Contains(netLog.String(), "connection lost") {
		t.Errorf("killed worker's death never detected:\n%s", netLog.String())
	}

	netRows := parseStepRows(t, netOut.String())
	if len(netRows) != 3 {
		t.Fatalf("network run reported %d steps, want 3:\n%s", len(netRows), netOut.String())
	}
	for step, want := range localRows {
		got, ok := netRows[step]
		if !ok {
			t.Fatalf("network run missing step %d", step)
		}
		if d := math.Abs(got[0] - want[0]); d > 1e-10 {
			t.Errorf("step %d: |ΔEtot| = %.3e Ha between network and single-process runs", step, d)
		}
		if d := math.Abs(got[1] - want[1]); d > 1e-10 {
			t.Errorf("step %d: |ΔEpot| = %.3e Ha between network and single-process runs", step, d)
		}
	}
}

// Flag validation of the distributed subcommands.
func TestNetSubcommandValidation(t *testing.T) {
	cases := [][]string{
		{"worker"}, // -connect missing
		{"worker", "-connect", "x", "-slots", "0"}, // bad slot count
		{"coordinate"}, // -in missing
		{"coordinate", "-in", "x.xyz", "-min-workers", "0"},
		{"coordinate", "-in", "x.xyz", "-potential", "dft"},
		{"coordinate", "-in", "x.xyz", "-resume"}, // -resume needs -checkpoint
	}
	for _, argv := range cases {
		if err := run(argv, io.Discard, io.Discard); !errors.Is(err, errUsage) {
			t.Errorf("run(%q) = %v, want usage error", argv, err)
		}
	}
}
